#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hrf {

/// Base class for all errors raised by the hrf library.
///
/// Following the C++ Core Guidelines (E.2), errors that cannot be handled
/// locally are reported via exceptions; all hrf exceptions derive from this
/// type so callers can catch the library's failures with a single handler.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when user-supplied configuration is invalid (bad depth, bad
/// variant/backend combination, out-of-range tuning parameter, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when a serialized model or dataset fails validation on load.
///
/// Loaders that know *where* parsing failed attach the section name
/// (header / a named array frame) and the absolute byte offset, both
/// appended to the message and exposed via section()/byte_offset() so
/// quarantined-artifact logs (docs/model-lifecycle.md) are actionable.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
  FormatError(const std::string& what, std::string section, std::uint64_t byte_offset)
      : Error(what + " [section '" + section + "' at byte " + std::to_string(byte_offset) + "]"),
        section_(std::move(section)),
        byte_offset_(byte_offset),
        has_location_(true) {}

  /// True when the thrower attached a section/offset location.
  bool has_location() const { return has_location_; }
  /// Section of the blob being parsed when the failure was detected.
  const std::string& section() const { return section_; }
  /// Absolute byte offset into the file of the failure point.
  std::uint64_t byte_offset() const { return byte_offset_; }

 private:
  std::string section_;
  std::uint64_t byte_offset_ = 0;
  bool has_location_ = false;
};

/// Raised when a simulated device resource is exceeded (shared memory,
/// BRAM/URAM capacity, ...). Mirrors what a real toolchain would reject.
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

/// Raised by the serving layer when admission control rejects a request
/// because the bounded request queue is full. Retryable by the client
/// after backing off — the server is alive, just saturated.
class OverloadError : public Error {
 public:
  explicit OverloadError(const std::string& what) : Error(what) {}
};

/// Raised when multi-tenant admission control sheds a request because its
/// tenant exhausted both its reserved queue share and the spare pool.
/// Derives from OverloadError — clients that back off on overload keep
/// working unchanged — but stays a distinct type (and a distinct
/// `requests.rejected_quota` counter) so a surging tenant's shedding is
/// never mistaken for fleet-wide saturation.
class QuotaError : public OverloadError {
 public:
  explicit QuotaError(const std::string& what) : OverloadError(what) {}
};

/// Raised when a request's deadline expires — either while queued (shed
/// before dispatch) or mid-execution (time-boxed chunked run abandoned).
/// Not retryable as-is: the answer would arrive too late by definition.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what) : Error(what) {}
};

/// Raised for requests refused or abandoned because the server is
/// shutting down: submissions after shutdown began, and queued requests
/// still unserved when the drain deadline passes.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_config(const std::string& what) { throw ConfigError(what); }
}  // namespace detail

/// Lightweight precondition check: throws ConfigError with `msg` when `cond`
/// is false. Used at public API boundaries (I.6: state preconditions).
inline void require(bool cond, const std::string& msg) {
  if (!cond) detail::throw_config(msg);
}

}  // namespace hrf
