#pragma once

#include <cstdint>

namespace hrf {

/// Integer ceil(a / b) for positive b.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr int ilog2(std::uint64_t x) {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// 2^k as a 64-bit value (k < 64).
constexpr std::uint64_t pow2(int k) { return std::uint64_t{1} << k; }

/// Number of nodes in a complete binary tree of the given depth, where a
/// single root node has depth 1 (the paper's convention): 2^depth - 1.
constexpr std::uint64_t complete_tree_nodes(int depth) { return pow2(depth) - 1; }

/// Rounds `x` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint64_t align_up(std::uint64_t x, std::uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

}  // namespace hrf
