#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace hrf {

namespace {

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw Error(op + " failed for " + path + ": " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync on a directory fd makes the rename itself durable; on
/// filesystems that reject directory fsync the rename is still atomic,
/// so EINVAL-style failures are ignored rather than fatal.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()))) {}

AtomicFile::~AtomicFile() {
  if (!committed_) std::remove(temp_path_.c_str());  // discard staging leftovers
}

void AtomicFile::write(std::span<const std::byte> bytes) {
  buf_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

void AtomicFile::write(const std::string& text) { buf_.write(text.data(), static_cast<std::streamsize>(text.size())); }

void AtomicFile::commit() {
  require(!committed_, "AtomicFile::commit called twice for " + path_);
  const std::string payload = buf_.str();

  const int fd = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open", temp_path_);
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(temp_path_.c_str());
      throw_errno("write", temp_path_);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(temp_path_.c_str());
    throw_errno("fsync", temp_path_);
  }
  if (::close(fd) != 0) {
    std::remove(temp_path_.c_str());
    throw_errno("close", temp_path_);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    throw_errno("rename", path_);
  }
  committed_ = true;
  fsync_dir(parent_dir(path_));
}

void write_file_atomic(const std::string& path, std::span<const std::byte> bytes) {
  AtomicFile f(path);
  f.write(bytes);
  f.commit();
}

void write_file_atomic(const std::string& path, const std::string& text) {
  AtomicFile f(path);
  f.write(text);
  f.commit();
}

std::string read_file_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error("cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  in.read(text.data(), size);
  if (!in) throw Error("read failed: " + path);
  return text;
}

}  // namespace hrf
