#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace hrf::json {

namespace {

[[noreturn]] void bad(const std::string& what) { throw FormatError("json: " + what); }

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) bad("cannot serialize a non-finite number");
  char buf[40];
  // Integers (the common case: counts, ns values) print without a
  // fraction so the file diffs cleanly; everything else round-trips.
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", n);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", n);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    bad(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value();
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    fail("unexpected character");
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // This writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 and reject surrogate pairs (never
          // produced by our emitter).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate escapes unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double n = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || !std::isfinite(n)) fail("bad number '" + tok + "'");
    return Value(n);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) bad("expected a boolean");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) bad("expected a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) bad("expected a string");
  return string_;
}

std::size_t Value::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  bad("size() on a non-container");
}

const Value& Value::at(std::size_t i) const {
  if (kind_ != Kind::Array) bad("at() on a non-array");
  if (i >= array_.size()) bad("array index out of range");
  return array_[i];
}

void Value::push_back(Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) bad("push_back() on a non-array");
  array_.push_back(std::move(v));
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) bad("operator[] on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Value());
  return object_.back().second;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::get(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) bad("missing required key '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::Object) bad("members() on a non-object");
  return object_;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
  const std::string close_pad(indent > 0 ? static_cast<std::size_t>(indent * depth) : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: append_number(out, number_); break;
    case Kind::String: append_escaped(out, string_); break;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        append_escaped(out, object_[i].first);
        out += colon;
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value Value::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace hrf::json
