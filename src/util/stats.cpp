#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hrf {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t k = 0;
  for (double x : xs) {
    ++k;
    const double delta = x - mean;
    mean += delta / static_cast<double>(k);
    m2 += delta * (x - mean);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = mean;
  s.stddev = s.n > 1 ? std::sqrt(m2 / static_cast<double>(s.n - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace hrf
