#include "util/rng.hpp"

#include <cmath>

namespace hrf {

std::uint64_t Xoshiro256::bounded(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s[0] ^= state_[0];
        s[1] ^= state_[1];
        s[2] ^= state_[2];
        s[3] ^= state_[3];
      }
      next();
    }
  }
  state_ = s;
  have_cached_normal_ = false;
}

Xoshiro256 Xoshiro256::split(int k) const {
  Xoshiro256 out = *this;
  for (int i = 0; i <= k; ++i) out.jump();
  return out;
}

}  // namespace hrf
