#include "util/metrics.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace hrf {

void CounterRegistry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void CounterRegistry::add_batch(const std::map<std::string, std::uint64_t>& deltas) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, delta] : deltas) counters_[name] += delta;
}

std::uint64_t CounterRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> CounterRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string CounterRegistry::to_markdown() const {
  Table t({"counter", "value"});
  for (const auto& [name, value] : snapshot()) t.row().cell(name).cell(value);
  return t.markdown();
}

ConfusionMatrix::ConfusionMatrix(std::span<const std::uint8_t> predictions,
                                 std::span<const std::uint8_t> labels, int num_classes)
    : num_classes_(num_classes) {
  require(num_classes >= 2 && num_classes <= 256, "num_classes must be in [2, 256]");
  require(predictions.size() == labels.size(), "prediction/label count mismatch");
  cells_.assign(static_cast<std::size_t>(num_classes) * num_classes, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    require(labels[i] < num_classes && predictions[i] < num_classes,
            "class id out of range in confusion matrix input");
    ++cells_[static_cast<std::size_t>(labels[i]) * num_classes + predictions[i]];
    ++total_;
  }
}

std::size_t ConfusionMatrix::at(int truth, int predicted) const {
  require(truth >= 0 && truth < num_classes_ && predicted >= 0 && predicted < num_classes_,
          "class id out of range");
  return cells_[static_cast<std::size_t>(truth) * num_classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (int c = 0; c < num_classes_; ++c) diag += at(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  std::size_t predicted = 0;
  for (int t = 0; t < num_classes_; ++t) predicted += at(t, cls);
  return predicted ? static_cast<double>(at(cls, cls)) / static_cast<double>(predicted) : 0.0;
}

double ConfusionMatrix::recall(int cls) const {
  std::size_t actual = 0;
  for (int p = 0; p < num_classes_; ++p) actual += at(cls, p);
  return actual ? static_cast<double>(at(cls, cls)) / static_cast<double>(actual) : 0.0;
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += f1(c);
  return sum / num_classes_;
}

std::string ConfusionMatrix::to_markdown() const {
  std::vector<std::string> headers{"true \\ pred"};
  for (int c = 0; c < num_classes_; ++c) headers.push_back("c" + std::to_string(c));
  headers.insert(headers.end(), {"precision", "recall", "f1"});
  Table t(headers);
  for (int truth = 0; truth < num_classes_; ++truth) {
    t.row().cell("c" + std::to_string(truth));
    for (int p = 0; p < num_classes_; ++p) t.cell(static_cast<std::uint64_t>(at(truth, p)));
    t.cell(precision(truth), 3).cell(recall(truth), 3).cell(f1(truth), 3);
  }
  std::ostringstream os;
  os << t.markdown();
  os << "accuracy " << accuracy() << ", macro-F1 " << macro_f1() << "\n";
  return os.str();
}

}  // namespace hrf
