#pragma once

// Fixed-bucket log-linear latency histogram (docs/benchmarking.md).
//
// The record path is lock-free — one relaxed fetch_add on a bucket
// counter plus a CAS loop for the exact max — so serving workers can
// record every request without contending on a mutex. Readers take a
// HistogramSnapshot (plain counts) at any time; snapshots merge
// associatively, which is what lets per-worker or per-shard histograms
// roll up into one fleet view.
//
// Bucket scheme (HdrHistogram-style log-linear): values below
// kSubBuckets nanoseconds get one exact bucket each; above that, each
// power-of-two octave is split into kSubBuckets linear sub-buckets, so
// the relative quantization error is bounded by 1/kSubBuckets (12.5%)
// at every scale from nanoseconds to minutes. percentile_ns() returns
// the lower bound of the bucket holding the requested rank, which is
// exact for values that land on a bucket boundary.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hrf {

/// Plain-data copy of a histogram at one point in time. Mergeable and
/// serializable; all percentile math happens here, not on the live
/// atomics.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // one per bucket, see LatencyHistogram
  std::uint64_t total = 0;            // sum of counts
  std::uint64_t sum_ns = 0;           // sum of recorded values
  std::uint64_t max_ns = 0;           // exact observed maximum (not bucketized)

  bool empty() const { return total == 0; }
  double mean_ns() const { return total == 0 ? 0.0 : static_cast<double>(sum_ns) / total; }

  /// Value at percentile `p` in [0, 100]: the lower bound of the bucket
  /// containing the rank, clamped to max_ns (so p100 is exact). 0 when
  /// empty.
  double percentile_ns(double p) const;

  /// Element-wise accumulation. Merging is associative and commutative,
  /// so any tree of merges over the same snapshots yields identical
  /// counts/total/sum/max.
  void merge(const HistogramSnapshot& other);

  /// Windowed delta: the distribution of observations recorded between
  /// `earlier` and this snapshot of the *same* live histogram (counts are
  /// monotone, so the element-wise difference is a valid histogram; any
  /// bucket that would go negative — a reset between snapshots — clamps
  /// to zero). Percentiles of the delta are the windowed p50/p95/p99 the
  /// time-series layer reports. The exact per-window maximum is not
  /// recoverable from two cumulative snapshots (the live max is global),
  /// so delta max_ns is the tightest provable bound: the cumulative max
  /// when the window still occupies its bucket, else the upper bound of
  /// the highest occupied delta bucket.
  HistogramSnapshot delta_since(const HistogramSnapshot& earlier) const;

  /// One Prometheus-style cumulative bucket: `cumulative` observations
  /// were <= `le_ns` (the bucket's inclusive upper bound).
  struct CumulativeBucket {
    std::uint64_t le_ns = 0;
    std::uint64_t cumulative = 0;
  };

  /// Cumulative `le` buckets for Prometheus exposition: one entry per
  /// non-empty native bucket (upper bound - 1, since native upper bounds
  /// are exclusive), monotonically non-decreasing, with the final entry
  /// carrying the full total (the exporter adds the `+Inf` line from
  /// `total`). Percentiles computed from these buckets agree with
  /// percentile_ns() to within one bucket width.
  std::vector<CumulativeBucket> cumulative() const;
};

/// Human units for a nanosecond quantity: "850ns", "12.4us", "3.1ms", "2.0s".
std::string format_ns(double ns);

/// Thread-safe latency histogram with a lock-free record path.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave; also the size of the
  /// exact region [0, kSubBuckets) ns.
  static constexpr int kSubBuckets = 8;
  static constexpr int kSubBucketBits = 3;  // log2(kSubBuckets)
  /// Octaves above the exact region; the top bucket absorbs any larger
  /// value (2^63 ns is far beyond any latency we time).
  static constexpr int kNumBuckets = kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  LatencyHistogram() = default;

  // A histogram is a shared sink, not a value: copying live atomics is
  // never what callers mean (take a snapshot() instead).
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation. Lock-free; safe from any thread.
  void record_ns(std::uint64_t ns);
  void record_seconds(double seconds);

  /// Point-in-time copy. Concurrent record_ns() calls may or may not be
  /// included (each is either fully visible or not yet visible — counts
  /// never tear).
  HistogramSnapshot snapshot() const;

  /// Resets every bucket to zero (not atomic vs concurrent recorders;
  /// meant for between-run reuse in harnesses).
  void reset();

  /// Bucket index for a value; inverse bounds for a bucket index.
  /// bucket_lower_bound(bucket_index(v)) <= v < bucket_upper_bound(...).
  static int bucket_index(std::uint64_t ns);
  static std::uint64_t bucket_lower_bound(int index);
  static std::uint64_t bucket_upper_bound(int index);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// "stage | count | mean | p50 | p95 | p99 | max" markdown table for a
/// set of named snapshots (CounterRegistry::to_markdown's sibling).
std::string latency_table_markdown(
    const std::vector<std::pair<std::string, HistogramSnapshot>>& stages);

}  // namespace hrf
