#pragma once

// Low-overhead in-process request tracing (docs/observability.md).
//
// A Tracer hands out sampled traces; each trace is a tree of timed spans
// with string attributes, assembled concurrently from any thread (the
// serving layer opens the root at admission on the client thread and the
// execute/chunk children on a worker thread). Completed traces land in a
// bounded ring buffer for later export — `hrf_cli trace` pretty-prints
// the slowest retained traces as a span tree.
//
// Overhead model: an *unsampled* trace costs one relaxed fetch_add at
// start_trace() and nothing afterwards — every Span operation on an
// inactive handle is an inline null-pointer check. A sampled trace takes
// one short mutex-guarded critical section per span operation (the mutex
// is per-trace, so concurrent requests never contend with each other).
// Sampling is deterministic (counter-based, not RNG): rate 0.25 records
// exactly every 4th trace, which keeps tests and overhead benchmarks
// reproducible.
//
// Timestamps come from the monotonic steady clock, so span durations are
// immune to wall-clock adjustments.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hrf::trace {

/// One completed (or still-open, if exported mid-flight) span.
struct SpanData {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root span
  std::string name;
  std::uint64_t start_ns = 0;  // steady-clock nanoseconds
  std::uint64_t end_ns = 0;    // 0 while still open
  std::vector<std::pair<std::string, std::string>> attributes;

  double seconds() const {
    return end_ns > start_ns ? static_cast<double>(end_ns - start_ns) / 1e9 : 0.0;
  }
};

/// One finished trace: the root span plus every descendant, in creation
/// order (spans[0] is the root).
struct Trace {
  std::uint64_t id = 0;
  std::vector<SpanData> spans;

  const SpanData& root() const { return spans.front(); }
  double duration_seconds() const { return root().seconds(); }

  /// Indented span tree with per-span duration, offset from the trace
  /// start, and [key=value ...] attributes — the `hrf_cli trace` format.
  std::string to_string() const;
};

struct TracerOptions {
  /// Fraction of traces recorded, in [0, 1]. 0 disables tracing (spans
  /// become no-ops); 1 records everything.
  double sampling = 0.0;
  /// Completed traces retained (ring buffer; oldest evicted first).
  std::size_t capacity = 128;
};

/// Point-in-time tracer statistics (exported with the metrics snapshot).
struct TracerSummary {
  std::uint64_t started = 0;    // start_trace() calls
  std::uint64_t sampled = 0;    // traces that were recorded
  std::uint64_t completed = 0;  // sampled traces whose root span ended
  std::uint64_t evicted = 0;    // completed traces pushed out of the ring
  std::size_t retained = 0;     // currently in the ring
  double sampling = 0.0;
  std::size_t capacity = 0;
};

class Tracer;

namespace detail {
/// Shared mutable state of one in-flight sampled trace. Span handles on
/// any thread append/mutate under the per-trace mutex; when the root
/// span ends the assembled Trace retires into the tracer's ring.
struct TraceContext {
  Tracer* tracer = nullptr;
  std::mutex mu;
  Trace trace;
  std::uint64_t next_span_id = 1;
  bool finished = false;
};
}  // namespace detail

/// RAII handle to one span. Default-constructed (or unsampled) handles
/// are inactive: every operation is a no-op, so call sites never branch
/// on sampling themselves. Movable, not copyable; destruction ends the
/// span if end() was not called explicitly.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// True when this span belongs to a sampled trace.
  bool active() const { return ctx_ != nullptr; }

  /// Opens a child span (inactive when this span is inactive or ended).
  Span child(const std::string& name) const;

  // Attribute setters are const: they mutate the shared trace record the
  // handle points at, not the handle itself (like writing through a
  // pointer-to-mutable from a const pointer member).
  void set_attr(const std::string& key, std::string value) const;
  void set_attr(const std::string& key, const char* value) const;
  void set_attr(const std::string& key, double value) const;
  void set_attr(const std::string& key, std::uint64_t value) const;
  void set_attr(const std::string& key, std::int64_t value) const;
  void set_attr(const std::string& key, bool value) const;

  /// Stamps the end timestamp. Idempotent; ending the root span retires
  /// the whole trace into the tracer's ring buffer.
  void end();

 private:
  friend class Tracer;
  Span(std::shared_ptr<detail::TraceContext> ctx, std::size_t index);

  std::shared_ptr<detail::TraceContext> ctx_;
  std::size_t index_ = 0;
  bool open_ = false;
};

/// Thread-safe trace factory + bounded retention ring.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TracerOptions options) : options_(options) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Begins a trace whose root span is `name`. Returns an inactive Span
  /// when the deterministic sampler skips this trace.
  Span start_trace(const std::string& name);

  /// Completed traces currently retained, oldest first.
  std::vector<std::shared_ptr<const Trace>> traces() const;

  /// The `n` slowest retained traces, slowest first.
  std::vector<std::shared_ptr<const Trace>> slowest(std::size_t n) const;

  TracerSummary summary() const;

  /// Drops every retained trace (counters keep accumulating).
  void clear();

  const TracerOptions& options() const { return options_; }

 private:
  friend class Span;
  void retire(Trace&& t);

  TracerOptions options_{};
  std::atomic<std::uint64_t> started_{0};
  mutable std::mutex mu_;  // guards everything below
  std::uint64_t sampled_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::deque<std::shared_ptr<const Trace>> ring_;
};

}  // namespace hrf::trace
