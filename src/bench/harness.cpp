#include "bench/harness.hpp"

#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <ctime>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>

#include "cluster/cluster.hpp"
#include "data/synthetic.hpp"
#include "obs/monitor.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace hrf::bench {

namespace {

/// First `n` rows of `ds` (all of it when n >= size).
Dataset head(const Dataset& ds, std::size_t n) {
  if (n >= ds.num_samples()) return ds;
  Dataset out(n, ds.num_features(), ds.num_classes());
  out.set_name(ds.name());
  for (std::size_t i = 0; i < n; ++i) out.push_back(ds.sample(i), ds.label(i));
  return out;
}

bool valid_combo(Variant v, Backend b) {
  if (v == Variant::FilBaseline) return b == Backend::GpuSim;
  if (v == Variant::Collaborative || v == Variant::Hybrid) return b != Backend::CpuNative;
  return true;
}

json::Value forest_to_json(const RandomForestSpec& spec) {
  json::Value f = json::Value::object();
  f["num_trees"] = spec.num_trees;
  f["max_depth"] = spec.max_depth;
  f["branch_prob"] = spec.branch_prob;
  f["num_features"] = spec.num_features;
  f["num_classes"] = spec.num_classes;
  f["seed"] = spec.seed;
  return f;
}

RandomForestSpec forest_from_json(const json::Value& f) {
  RandomForestSpec spec;
  spec.num_trees = static_cast<int>(f.get("num_trees").as_number());
  spec.max_depth = static_cast<int>(f.get("max_depth").as_number());
  spec.branch_prob = f.get("branch_prob").as_number();
  spec.num_features = static_cast<int>(f.get("num_features").as_number());
  spec.num_classes = static_cast<int>(f.get("num_classes").as_number());
  spec.seed = static_cast<std::uint64_t>(f.get("seed").as_number());
  return spec;
}

}  // namespace

Backend backend_from_name(const std::string& name) {
  if (name == "cpu" || name == "cpu-native") return Backend::CpuNative;
  if (name == "gpu-sim") return Backend::GpuSim;
  if (name == "fpga-sim") return Backend::FpgaSim;
  throw ConfigError("unknown backend '" + name + "' (cpu|gpu-sim|fpga-sim)");
}

Variant variant_from_name(const std::string& name) {
  if (name == "csr") return Variant::Csr;
  if (name == "independent") return Variant::Independent;
  if (name == "collaborative") return Variant::Collaborative;
  if (name == "hybrid") return Variant::Hybrid;
  if (name == "fil" || name == "fil-baseline") return Variant::FilBaseline;
  throw ConfigError("unknown variant '" + name +
                    "' (csr|independent|collaborative|hybrid|fil)");
}

EnvFingerprint EnvFingerprint::capture() {
  EnvFingerprint env;
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) == 0) env.hostname = host;
#if defined(__VERSION__)
  env.compiler = __VERSION__;
#else
  env.compiler = "unknown";
#endif
#if defined(NDEBUG)
  env.build = "release";
#else
  env.build = "debug";
#endif
  env.omp_max_threads = omp_get_max_threads();
  char stamp[32] = {};
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm);
  env.timestamp_utc = stamp;
  return env;
}

BenchReport run_sweep(const SweepOptions& options) {
  require(options.warmup_runs >= 0, "warmup_runs must be >= 0");
  require(options.repeat_runs >= 1, "repeat_runs must be >= 1");
  require(!options.batch_sizes.empty(), "batch_sizes must not be empty");

  BenchReport report;
  report.env = EnvFingerprint::capture();
  report.warmup_runs = options.warmup_runs;
  report.repeat_runs = options.repeat_runs;
  report.forest = options.forest;
  report.query_seed = options.query_seed;

  const Forest forest = make_random_forest(options.forest);
  std::size_t max_batch = 0;
  for (const std::size_t b : options.batch_sizes) {
    require(b >= 1, "batch sizes must be >= 1");
    max_batch = std::max(max_batch, b);
  }
  const Dataset queries =
      make_random_queries(max_batch, options.forest.num_features, options.query_seed);

  for (const Variant variant : options.variants) {
    for (const Backend backend : options.backends) {
      if (!valid_combo(variant, backend)) continue;
      ClassifierOptions copt;
      copt.variant = variant;
      copt.backend = backend;
      copt.layout = options.layout;
      const Classifier clf(forest, copt);
      for (const std::size_t batch : options.batch_sizes) {
        const Dataset q = head(queries, batch);
        for (int w = 0; w < options.warmup_runs; ++w) (void)clf.classify(q);

        // The histogram records whole-batch latencies (ns-scale integers
        // with plenty of resolution); per-query figures divide afterwards
        // so sub-ns per-query rates (a wide GPU absorbing a small batch
        // in one wave) do not truncate to zero.
        LatencyHistogram hist;
        bool simulated = true;
        for (int r = 0; r < options.repeat_runs; ++r) {
          const RunReport run = clf.classify(q);
          simulated = run.simulated;
          hist.record_seconds(run.seconds);
        }
        const HistogramSnapshot snap = hist.snapshot();
        const auto per_query = [&](double batch_ns) {
          return batch_ns / static_cast<double>(q.num_samples());
        };

        CaseResult c;
        c.variant = to_string(variant);
        c.backend = to_string(backend);
        c.batch = batch;
        c.repeats = options.repeat_runs;
        c.simulated = simulated;
        c.p50_ns_per_query = per_query(snap.percentile_ns(50));
        c.p95_ns_per_query = per_query(snap.percentile_ns(95));
        c.p99_ns_per_query = per_query(snap.percentile_ns(99));
        c.max_ns_per_query = per_query(static_cast<double>(snap.max_ns));
        c.mean_ns_per_query = per_query(snap.mean_ns());
        c.throughput_qps = c.p50_ns_per_query > 0.0 ? 1e9 / c.p50_ns_per_query : 0.0;
        report.cases.push_back(std::move(c));
      }
    }
  }
  return report;
}

TraceOverheadResult measure_trace_overhead(const TraceOverheadOptions& options) {
  require(options.requests >= 1, "trace overhead needs at least one request");
  require(options.batch >= 1, "trace overhead batch must be >= 1");
  require(options.num_workers >= 1, "trace overhead needs at least one worker");
  require(options.chunk_size >= 1, "trace overhead chunk size must be >= 1");

  const Forest forest = make_random_forest(options.forest);
  const Dataset queries =
      make_random_queries(options.batch, options.forest.num_features, options.query_seed);

  // Both runs take the chunked (deadline) execution path — the deadline is
  // generous enough never to fire — so sampling rate is the only variable.
  // Per-request latency is timed at the submit().get() boundary with the
  // wall clock directly: the server's power-of-two histogram buckets are
  // ~8% wide at the 100us scale, coarser than the effect being measured.
  const auto serve_p95_ns = [&](double sampling) {
    ClassifierOptions copt;
    copt.variant = Variant::Independent;
    copt.backend = Backend::CpuNative;
    serve::ServerOptions sopt;
    sopt.num_workers = options.num_workers;
    sopt.queue_capacity = std::max<std::size_t>(8, options.num_workers * 2);
    sopt.default_deadline_seconds = 30.0;
    sopt.deadline_chunk_size = options.chunk_size;
    sopt.trace_sampling = sampling;
    sopt.trace_capacity = 64;
    serve::ForestServer server(forest, copt, sopt);
    for (std::size_t r = 0; r < options.requests / 4; ++r) {
      (void)server.submit(queries).get();  // warmup: page-in, pool spin-up
    }
    std::vector<double> samples;
    samples.reserve(options.requests);
    for (std::size_t r = 0; r < options.requests; ++r) {
      WallTimer t;
      (void)server.submit(queries).get();
      samples.push_back(t.seconds() * 1e9);
    }
    server.shutdown();
    std::sort(samples.begin(), samples.end());
    return samples[static_cast<std::size_t>(0.95 * static_cast<double>(samples.size() - 1))];
  };

  TraceOverheadResult result;
  result.requests = options.requests;
  result.batch = options.batch;
  // Interleaved best-of-5: wall-clock p95 on a shared host spikes upward
  // only, so the min over repeats converges on the true cost of each mode.
  result.p95_off_ns = std::numeric_limits<double>::infinity();
  result.p95_on_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    result.p95_off_ns = std::min(result.p95_off_ns, serve_p95_ns(0.0));
    result.p95_on_ns = std::min(result.p95_on_ns, serve_p95_ns(1.0));
  }
  result.ratio = result.p95_off_ns > 0.0 ? result.p95_on_ns / result.p95_off_ns : 0.0;
  return result;
}

AuditOverheadResult measure_audit_overhead(const AuditOverheadOptions& options) {
  require(options.requests >= 1, "audit overhead needs at least one request");
  require(options.batch >= 1, "audit overhead batch must be >= 1");
  require(options.num_workers >= 1, "audit overhead needs at least one worker");
  require(options.sample_every >= 1, "audit overhead sample_every must be >= 1");

  const Forest forest = make_random_forest(options.forest);
  const Dataset queries =
      make_random_queries(options.batch, options.forest.num_features, options.query_seed);

  // Same measurement shape as the tracing case: identical execution path
  // both runs, wall clock at the submit().get() boundary, and the audit
  // sampling rate is the only variable. The "on" run also carries the
  // integrity monitor thread, so its (tiny) wakeup cost is in the number.
  const auto serve_p95_ns = [&](std::size_t sample_every) {
    ClassifierOptions copt;
    copt.variant = Variant::Independent;
    copt.backend = Backend::CpuNative;
    serve::ServerOptions sopt;
    sopt.num_workers = options.num_workers;
    sopt.queue_capacity = std::max<std::size_t>(8, options.num_workers * 2);
    sopt.default_deadline_seconds = 30.0;
    sopt.integrity.audit_sample_every = sample_every;
    serve::ForestServer server(forest, copt, sopt);
    for (std::size_t r = 0; r < options.requests / 4; ++r) {
      (void)server.submit(queries).get();  // warmup: page-in, pool spin-up
    }
    std::vector<double> samples;
    samples.reserve(options.requests);
    for (std::size_t r = 0; r < options.requests; ++r) {
      WallTimer t;
      (void)server.submit(queries).get();
      samples.push_back(t.seconds() * 1e9);
    }
    server.shutdown();
    std::sort(samples.begin(), samples.end());
    return samples[static_cast<std::size_t>(0.95 * static_cast<double>(samples.size() - 1))];
  };

  AuditOverheadResult result;
  result.requests = options.requests;
  result.batch = options.batch;
  result.sample_every = options.sample_every;
  // Interleaved best-of-5 min, for the same upward-spike-only reason as
  // the tracing case.
  result.p95_off_ns = std::numeric_limits<double>::infinity();
  result.p95_on_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    result.p95_off_ns = std::min(result.p95_off_ns, serve_p95_ns(0));
    result.p95_on_ns = std::min(result.p95_on_ns, serve_p95_ns(options.sample_every));
  }
  result.ratio = result.p95_off_ns > 0.0 ? result.p95_on_ns / result.p95_off_ns : 0.0;
  return result;
}

ObsOverheadResult measure_obs_overhead(const ObsOverheadOptions& options) {
  require(options.requests >= 1, "obs overhead needs at least one request");
  require(options.batch >= 1, "obs overhead batch must be >= 1");
  require(options.num_workers >= 1, "obs overhead needs at least one worker");
  require(options.interval_seconds > 0.0, "obs overhead interval must be > 0");

  const Forest forest = make_random_forest(options.forest);
  const Dataset queries =
      make_random_queries(options.batch, options.forest.num_features, options.query_seed);

  // Same measurement shape as the tracing/audit cases: identical
  // execution path both runs, wall clock at the submit().get() boundary.
  // The "on" run wires a FlightRecorder into the server and runs a live
  // Monitor thread (windowed sampling + armed SLO engine, no incident
  // dir) — the full production observability configuration.
  const auto serve_p95_ns = [&](bool armed) {
    ClassifierOptions copt;
    copt.variant = Variant::Independent;
    copt.backend = Backend::CpuNative;
    serve::ServerOptions sopt;
    sopt.num_workers = options.num_workers;
    sopt.queue_capacity = std::max<std::size_t>(8, options.num_workers * 2);
    sopt.default_deadline_seconds = 30.0;
    obs::FlightRecorder recorder(512);
    if (armed) sopt.flight_recorder = &recorder;
    serve::ForestServer server(forest, copt, sopt);
    std::optional<obs::Monitor> monitor;
    if (armed) {
      obs::MonitorOptions mopt;
      mopt.interval_seconds = options.interval_seconds;
      mopt.slo_enabled = true;
      monitor.emplace(std::move(mopt), [&server] { return server.metrics_snapshot(); },
                      &recorder);
    }
    for (std::size_t r = 0; r < options.requests / 4; ++r) {
      (void)server.submit(queries).get();  // warmup: page-in, pool spin-up
    }
    std::vector<double> samples;
    samples.reserve(options.requests);
    for (std::size_t r = 0; r < options.requests; ++r) {
      WallTimer t;
      (void)server.submit(queries).get();
      samples.push_back(t.seconds() * 1e9);
    }
    if (monitor) monitor->stop();
    server.shutdown();
    std::sort(samples.begin(), samples.end());
    return samples[static_cast<std::size_t>(0.95 * static_cast<double>(samples.size() - 1))];
  };

  ObsOverheadResult result;
  result.requests = options.requests;
  result.batch = options.batch;
  result.interval_seconds = options.interval_seconds;
  // Interleaved best-of-5 min, for the same upward-spike-only reason as
  // the tracing case.
  result.p95_off_ns = std::numeric_limits<double>::infinity();
  result.p95_on_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    result.p95_off_ns = std::min(result.p95_off_ns, serve_p95_ns(false));
    result.p95_on_ns = std::min(result.p95_on_ns, serve_p95_ns(true));
  }
  result.ratio = result.p95_off_ns > 0.0 ? result.p95_on_ns / result.p95_off_ns : 0.0;
  return result;
}

ClusterBenchResult measure_cluster(const ClusterBenchOptions& options) {
  require(options.shards >= 1, "cluster bench needs at least one shard");
  require(options.requests >= 1, "cluster bench needs at least one request");
  require(options.clients >= 1, "cluster bench needs at least one client");
  require(options.batch >= 1, "cluster bench batch must be >= 1");
  require(options.workers_per_shard >= 1, "cluster bench needs >= 1 worker per shard");

  const Forest forest = make_random_forest(options.forest);
  const Dataset queries =
      make_random_queries(options.batch, options.forest.num_features, options.query_seed);

  ClassifierOptions copt;
  copt.variant = Variant::Independent;
  copt.backend = Backend::CpuNative;
  serve::ServerOptions sopt;
  sopt.num_workers = options.workers_per_shard;
  sopt.queue_capacity = std::max<std::size_t>(8, options.clients * 2);
  sopt.default_deadline_seconds = 30.0;
  cluster::ClusterOptions clopt;
  clopt.num_shards = options.shards;
  // Probes off: the healthy-fleet benchmark measures routing + serving,
  // not background health traffic.
  clopt.start_probes = false;
  cluster::ClusterRouter router(forest, copt, sopt, clopt);

  // Warmup: touch every shard once (keys walk the ring).
  for (std::size_t s = 0; s < options.shards; ++s) {
    (void)router.query(queries, {.key = s});
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> completed{0};
  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= options.requests) return;
        (void)router.query(queries, {.key = c * 1000003ULL + i});
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = wall.seconds();
  const HistogramSnapshot route = router.route_latency();
  router.shutdown();

  ClusterBenchResult result;
  result.shards = options.shards;
  result.requests = options.requests;
  result.batch = options.batch;
  result.p95_ns = route.percentile_ns(95);
  result.qps = seconds > 0.0 ? static_cast<double>(completed.load()) / seconds : 0.0;
  return result;
}

NoisyNeighborResult measure_noisy_neighbor(const NoisyNeighborOptions& options) {
  require(options.shards >= 1, "noisy bench needs at least one shard");
  require(options.requests >= 1, "noisy bench needs at least one victim request");
  require(options.clients >= 1, "noisy bench needs at least one victim client");
  require(options.surge_clients >= 1, "noisy bench needs at least one surge client");
  require(options.batch >= 1, "noisy bench batch must be >= 1");
  require(options.workers_per_shard >= 1, "noisy bench needs >= 1 worker per shard");
  require(options.queue_capacity >= 2, "noisy bench queue must hold both tenants");
  require(options.surge_stall_seconds >= 0.0, "surge stall must be >= 0");

  const Forest forest = make_random_forest(options.forest);
  const Dataset queries =
      make_random_queries(options.batch, options.forest.num_features, options.query_seed);

  ClassifierOptions copt;
  copt.variant = Variant::Independent;
  copt.backend = Backend::CpuNative;
  serve::ServerOptions sopt;
  sopt.num_workers = options.workers_per_shard;
  sopt.queue_capacity = options.queue_capacity;
  sopt.default_deadline_seconds = 30.0;
  sopt.quotas.tenants = {{"victim", options.victim_weight},
                         {"surger", options.surger_weight}};
  sopt.surge_tenant = "surger";
  sopt.inject_surge_seconds = options.surge_stall_seconds;
  cluster::ClusterOptions clopt;
  clopt.num_shards = options.shards;
  clopt.start_probes = false;
  cluster::ClusterRouter router(forest, copt, sopt, clopt);

  for (std::size_t s = 0; s < options.shards; ++s) {
    (void)router.query(queries, {.key = s, .tenant = "victim"});
  }

  // The surge runs for the whole victim measurement: spinning clients
  // whose admitted requests stall a worker (surge:tenant fault site).
  FaultInjector::global().arm("surge:tenant", -1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> surge_key{1'000'000};
  std::vector<std::thread> surgers;
  surgers.reserve(options.surge_clients);
  for (std::size_t c = 0; c < options.surge_clients; ++c) {
    surgers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        cluster::QueryOptions qopt;
        qopt.key = surge_key.fetch_add(1, std::memory_order_relaxed);
        qopt.tenant = "surger";
        try {
          (void)router.query(queries, qopt);
        } catch (const QuotaError&) {
          shed.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        } catch (const Error&) {
          // Deadline/overload spillover is the victims' concern, not ours.
        }
      }
    });
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::vector<double>> latencies(options.clients);
  WallTimer wall;
  std::vector<std::thread> victims;
  victims.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    victims.emplace_back([&, c] {
      latencies[c].reserve(options.requests / options.clients + 1);
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= options.requests) return;
        cluster::QueryOptions qopt;
        qopt.key = c * 1000003ULL + i;
        qopt.tenant = "victim";
        WallTimer t;
        try {
          (void)router.query(queries, qopt);
          latencies[c].push_back(t.seconds() * 1e9);
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : victims) t.join();
  const double seconds = wall.seconds();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : surgers) t.join();
  FaultInjector::global().disarm("surge:tenant");
  router.shutdown();

  std::vector<double> all;
  for (const std::vector<double>& v : latencies) all.insert(all.end(), v.begin(), v.end());
  NoisyNeighborResult result;
  result.shards = options.shards;
  result.requests = options.requests;
  result.batch = options.batch;
  result.victim_p95_ns = all.empty() ? 0.0 : percentile(all, 95.0);
  const std::uint64_t attempts = ok.load() + failed.load();
  result.victim_success =
      attempts > 0 ? static_cast<double>(ok.load()) / static_cast<double>(attempts) : 0.0;
  result.surger_shed = shed.load();
  result.victim_qps = seconds > 0.0 ? static_cast<double>(ok.load()) / seconds : 0.0;
  return result;
}

BatchBenchResult measure_batch(const BatchBenchOptions& options) {
  require(options.clients >= 1, "batch bench needs at least one client");
  require(options.requests >= 1, "batch bench needs at least one request");
  require(options.rows >= 1, "batch bench rows must be >= 1");
  require(options.workers >= 1, "batch bench needs >= 1 worker");
  require(options.batch_max >= 2, "batch bench needs micro-batching on (batch_max >= 2)");

  const Forest forest = make_random_forest(options.forest);
  const Dataset queries =
      make_random_queries(options.rows, options.forest.num_features, options.query_seed);

  // The paper's amortization case: hybrid on the simulated GPU, where
  // every classify pays the same stage-1 root-subtree staging whether it
  // carries 8 rows or a full warp's worth — exactly the per-dispatch
  // fixed cost micro-batching exists to share.
  ClassifierOptions copt;
  copt.variant = Variant::Hybrid;
  copt.backend = Backend::GpuSim;
  copt.layout.subtree_depth = 4;

  // One identical run per configuration; only the batching knobs differ.
  const auto run = [&](const serve::BatchOptions& batching, double* p95_ns, double* qps) {
    serve::ServerOptions sopt;
    sopt.num_workers = options.workers;
    sopt.queue_capacity = std::max<std::size_t>(16, options.clients * 2);
    sopt.default_deadline_seconds = 30.0;
    sopt.batching = batching;
    serve::ForestServer server(forest, copt, sopt);
    for (std::size_t i = 0; i < options.workers; ++i) (void)server.submit(queries).get();

    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::vector<double>> latencies(options.clients);
    WallTimer wall;
    std::vector<std::thread> clients;
    clients.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) {
      clients.emplace_back([&, c] {
        latencies[c].reserve(options.requests / options.clients + 1);
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= options.requests) return;
          WallTimer t;
          (void)server.submit(queries).get();
          latencies[c].push_back(t.seconds() * 1e9);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double seconds = wall.seconds();
    server.shutdown();

    std::vector<double> all;
    for (const std::vector<double>& v : latencies) all.insert(all.end(), v.begin(), v.end());
    *p95_ns = all.empty() ? 0.0 : percentile(all, 95.0);
    *qps = seconds > 0.0 ? static_cast<double>(completed.load()) / seconds : 0.0;
  };

  BatchBenchResult result;
  result.clients = options.clients;
  result.requests = options.requests;
  result.rows = options.rows;
  result.batch_max = options.batch_max;
  serve::BatchOptions off;  // max_requests 1: batching disabled
  run(off, &result.p95_unbatched_ns, &result.qps_unbatched);
  serve::BatchOptions on;
  on.max_requests = options.batch_max;
  on.max_wait_seconds = options.batch_wait_seconds;
  run(on, &result.p95_batched_ns, &result.qps_batched);
  result.speedup = result.qps_unbatched > 0.0 ? result.qps_batched / result.qps_unbatched : 0.0;
  return result;
}

json::Value to_json(const BenchReport& report) {
  json::Value root = json::Value::object();
  root["schema"] = kSchemaName;
  root["schema_version"] = report.schema_version;

  json::Value env = json::Value::object();
  env["hostname"] = report.env.hostname;
  env["compiler"] = report.env.compiler;
  env["build"] = report.env.build;
  env["omp_max_threads"] = report.env.omp_max_threads;
  env["timestamp_utc"] = report.env.timestamp_utc;
  root["env"] = std::move(env);

  json::Value policy = json::Value::object();
  policy["warmup_runs"] = report.warmup_runs;
  policy["repeat_runs"] = report.repeat_runs;
  policy["query_seed"] = report.query_seed;
  root["policy"] = std::move(policy);
  root["forest"] = forest_to_json(report.forest);

  json::Value cases = json::Value::array();
  for (const CaseResult& c : report.cases) {
    json::Value jc = json::Value::object();
    jc["variant"] = c.variant;
    jc["backend"] = c.backend;
    jc["batch"] = c.batch;
    jc["repeats"] = c.repeats;
    jc["simulated"] = c.simulated;
    jc["p50_ns_per_query"] = c.p50_ns_per_query;
    jc["p95_ns_per_query"] = c.p95_ns_per_query;
    jc["p99_ns_per_query"] = c.p99_ns_per_query;
    jc["max_ns_per_query"] = c.max_ns_per_query;
    jc["mean_ns_per_query"] = c.mean_ns_per_query;
    jc["throughput_qps"] = c.throughput_qps;
    cases.push_back(std::move(jc));
  }
  root["cases"] = std::move(cases);

  if (report.trace_overhead) {
    json::Value t = json::Value::object();
    t["requests"] = report.trace_overhead->requests;
    t["batch"] = report.trace_overhead->batch;
    t["p95_off_ns"] = report.trace_overhead->p95_off_ns;
    t["p95_on_ns"] = report.trace_overhead->p95_on_ns;
    t["ratio"] = report.trace_overhead->ratio;
    root["trace_overhead"] = std::move(t);
  }

  if (report.audit_overhead) {
    json::Value a = json::Value::object();
    a["requests"] = report.audit_overhead->requests;
    a["batch"] = report.audit_overhead->batch;
    a["sample_every"] = report.audit_overhead->sample_every;
    a["p95_off_ns"] = report.audit_overhead->p95_off_ns;
    a["p95_on_ns"] = report.audit_overhead->p95_on_ns;
    a["ratio"] = report.audit_overhead->ratio;
    root["audit_overhead"] = std::move(a);
  }

  if (report.obs_overhead) {
    json::Value o = json::Value::object();
    o["requests"] = report.obs_overhead->requests;
    o["batch"] = report.obs_overhead->batch;
    o["interval_seconds"] = report.obs_overhead->interval_seconds;
    o["p95_off_ns"] = report.obs_overhead->p95_off_ns;
    o["p95_on_ns"] = report.obs_overhead->p95_on_ns;
    o["ratio"] = report.obs_overhead->ratio;
    root["obs_overhead"] = std::move(o);
  }

  if (report.cluster) {
    json::Value c = json::Value::object();
    c["shards"] = report.cluster->shards;
    c["requests"] = report.cluster->requests;
    c["batch"] = report.cluster->batch;
    c["p95_ns"] = report.cluster->p95_ns;
    c["qps"] = report.cluster->qps;
    root["cluster"] = std::move(c);
  }

  if (report.noisy) {
    json::Value n = json::Value::object();
    n["shards"] = report.noisy->shards;
    n["requests"] = report.noisy->requests;
    n["batch"] = report.noisy->batch;
    n["victim_p95_ns"] = report.noisy->victim_p95_ns;
    n["victim_success"] = report.noisy->victim_success;
    n["surger_shed"] = report.noisy->surger_shed;
    n["victim_qps"] = report.noisy->victim_qps;
    root["noisy"] = std::move(n);
  }

  if (report.batch) {
    json::Value b = json::Value::object();
    b["clients"] = report.batch->clients;
    b["requests"] = report.batch->requests;
    b["rows"] = report.batch->rows;
    b["batch_max"] = report.batch->batch_max;
    b["p95_unbatched_ns"] = report.batch->p95_unbatched_ns;
    b["p95_batched_ns"] = report.batch->p95_batched_ns;
    b["qps_unbatched"] = report.batch->qps_unbatched;
    b["qps_batched"] = report.batch->qps_batched;
    b["speedup"] = report.batch->speedup;
    root["batch"] = std::move(b);
  }
  return root;
}

BenchReport report_from_json(const json::Value& v) {
  const std::string schema = v.get("schema").as_string();
  if (schema != kSchemaName) {
    throw FormatError("not an hrf-bench report (schema '" + schema + "')");
  }
  const int version = static_cast<int>(v.get("schema_version").as_number());
  if (version != kSchemaVersion) {
    throw FormatError("bench schema version " + std::to_string(version) +
                      " != supported " + std::to_string(kSchemaVersion) +
                      "; regenerate the baseline");
  }

  BenchReport report;
  report.schema_version = version;
  const json::Value& env = v.get("env");
  report.env.hostname = env.get("hostname").as_string();
  report.env.compiler = env.get("compiler").as_string();
  report.env.build = env.get("build").as_string();
  report.env.omp_max_threads = static_cast<int>(env.get("omp_max_threads").as_number());
  report.env.timestamp_utc = env.get("timestamp_utc").as_string();

  const json::Value& policy = v.get("policy");
  report.warmup_runs = static_cast<int>(policy.get("warmup_runs").as_number());
  report.repeat_runs = static_cast<int>(policy.get("repeat_runs").as_number());
  report.query_seed = static_cast<std::uint64_t>(policy.get("query_seed").as_number());
  report.forest = forest_from_json(v.get("forest"));

  const json::Value& cases = v.get("cases");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const json::Value& jc = cases.at(i);
    CaseResult c;
    c.variant = jc.get("variant").as_string();
    c.backend = jc.get("backend").as_string();
    c.batch = static_cast<std::size_t>(jc.get("batch").as_number());
    c.repeats = static_cast<int>(jc.get("repeats").as_number());
    c.simulated = jc.get("simulated").as_bool();
    c.p50_ns_per_query = jc.get("p50_ns_per_query").as_number();
    c.p95_ns_per_query = jc.get("p95_ns_per_query").as_number();
    c.p99_ns_per_query = jc.get("p99_ns_per_query").as_number();
    c.max_ns_per_query = jc.get("max_ns_per_query").as_number();
    c.mean_ns_per_query = jc.get("mean_ns_per_query").as_number();
    c.throughput_qps = jc.get("throughput_qps").as_number();
    report.cases.push_back(std::move(c));
  }

  if (const json::Value* t = v.find("trace_overhead")) {
    TraceOverheadResult res;
    res.requests = static_cast<std::size_t>(t->get("requests").as_number());
    res.batch = static_cast<std::size_t>(t->get("batch").as_number());
    res.p95_off_ns = t->get("p95_off_ns").as_number();
    res.p95_on_ns = t->get("p95_on_ns").as_number();
    res.ratio = t->get("ratio").as_number();
    report.trace_overhead = res;
  }

  if (const json::Value* a = v.find("audit_overhead")) {
    AuditOverheadResult res;
    res.requests = static_cast<std::size_t>(a->get("requests").as_number());
    res.batch = static_cast<std::size_t>(a->get("batch").as_number());
    res.sample_every = static_cast<std::size_t>(a->get("sample_every").as_number());
    res.p95_off_ns = a->get("p95_off_ns").as_number();
    res.p95_on_ns = a->get("p95_on_ns").as_number();
    res.ratio = a->get("ratio").as_number();
    report.audit_overhead = res;
  }

  if (const json::Value* o = v.find("obs_overhead")) {
    ObsOverheadResult res;
    res.requests = static_cast<std::size_t>(o->get("requests").as_number());
    res.batch = static_cast<std::size_t>(o->get("batch").as_number());
    res.interval_seconds = o->get("interval_seconds").as_number();
    res.p95_off_ns = o->get("p95_off_ns").as_number();
    res.p95_on_ns = o->get("p95_on_ns").as_number();
    res.ratio = o->get("ratio").as_number();
    report.obs_overhead = res;
  }

  if (const json::Value* c = v.find("cluster")) {
    ClusterBenchResult res;
    res.shards = static_cast<std::size_t>(c->get("shards").as_number());
    res.requests = static_cast<std::size_t>(c->get("requests").as_number());
    res.batch = static_cast<std::size_t>(c->get("batch").as_number());
    res.p95_ns = c->get("p95_ns").as_number();
    res.qps = c->get("qps").as_number();
    report.cluster = res;
  }

  if (const json::Value* n = v.find("noisy")) {
    NoisyNeighborResult res;
    res.shards = static_cast<std::size_t>(n->get("shards").as_number());
    res.requests = static_cast<std::size_t>(n->get("requests").as_number());
    res.batch = static_cast<std::size_t>(n->get("batch").as_number());
    res.victim_p95_ns = n->get("victim_p95_ns").as_number();
    res.victim_success = n->get("victim_success").as_number();
    res.surger_shed = static_cast<std::uint64_t>(n->get("surger_shed").as_number());
    res.victim_qps = n->get("victim_qps").as_number();
    report.noisy = res;
  }

  if (const json::Value* b = v.find("batch")) {
    BatchBenchResult res;
    res.clients = static_cast<std::size_t>(b->get("clients").as_number());
    res.requests = static_cast<std::size_t>(b->get("requests").as_number());
    res.rows = static_cast<std::size_t>(b->get("rows").as_number());
    res.batch_max = static_cast<std::size_t>(b->get("batch_max").as_number());
    res.p95_unbatched_ns = b->get("p95_unbatched_ns").as_number();
    res.p95_batched_ns = b->get("p95_batched_ns").as_number();
    res.qps_unbatched = b->get("qps_unbatched").as_number();
    res.qps_batched = b->get("qps_batched").as_number();
    res.speedup = b->get("speedup").as_number();
    report.batch = res;
  }
  return report;
}

void save_report(const BenchReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << to_json(report).dump(2) << "\n";
  if (!out) throw Error("failed writing '" + path + "'");
}

BenchReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return report_from_json(json::Value::parse(buf.str()));
}

CompareResult compare_reports(const BenchReport& baseline, const BenchReport& current,
                              double tolerance, double trace_tolerance) {
  require(tolerance >= 0.0, "tolerance must be >= 0");
  require(trace_tolerance >= 0.0, "trace_tolerance must be >= 0");
  CompareResult result;
  if (current.trace_overhead) {
    result.trace_overhead_ratio = current.trace_overhead->ratio;
    result.trace_overhead_ok = result.trace_overhead_ratio <= 1.0 + trace_tolerance;
  }
  if (current.audit_overhead) {
    result.audit_overhead_ratio = current.audit_overhead->ratio;
    result.audit_overhead_ok = result.audit_overhead_ratio <= 1.0 + trace_tolerance;
  }
  if (current.obs_overhead) {
    result.obs_overhead_ratio = current.obs_overhead->ratio;
    result.obs_overhead_ok = result.obs_overhead_ratio <= 1.0 + trace_tolerance;
  }
  if (baseline.cluster) {
    if (!current.cluster) {
      result.missing_cases.push_back("cluster");
    } else {
      ++result.compared;
      if (baseline.cluster->p95_ns > 0.0 &&
          current.cluster->p95_ns > baseline.cluster->p95_ns * (1.0 + tolerance)) {
        result.regressions.push_back({"cluster", baseline.cluster->p95_ns,
                                      current.cluster->p95_ns,
                                      current.cluster->p95_ns / baseline.cluster->p95_ns});
      }
    }
  }
  if (baseline.noisy) {
    if (!current.noisy) {
      result.missing_cases.push_back("noisy");
    } else {
      ++result.compared;
      if (baseline.noisy->victim_p95_ns > 0.0 &&
          current.noisy->victim_p95_ns > baseline.noisy->victim_p95_ns * (1.0 + tolerance)) {
        result.regressions.push_back(
            {"noisy", baseline.noisy->victim_p95_ns, current.noisy->victim_p95_ns,
             current.noisy->victim_p95_ns / baseline.noisy->victim_p95_ns});
      }
    }
  }
  if (baseline.batch) {
    if (!current.batch) {
      result.missing_cases.push_back("batch");
    } else {
      ++result.compared;
      if (baseline.batch->p95_batched_ns > 0.0 &&
          current.batch->p95_batched_ns > baseline.batch->p95_batched_ns * (1.0 + tolerance)) {
        result.regressions.push_back(
            {"batch", baseline.batch->p95_batched_ns, current.batch->p95_batched_ns,
             current.batch->p95_batched_ns / baseline.batch->p95_batched_ns});
      }
    }
  }
  for (const CaseResult& base : baseline.cases) {
    const CaseResult* cur = nullptr;
    for (const CaseResult& c : current.cases) {
      if (c.variant == base.variant && c.backend == base.backend && c.batch == base.batch) {
        cur = &c;
        break;
      }
    }
    if (cur == nullptr) {
      result.missing_cases.push_back(base.key());
      continue;
    }
    ++result.compared;
    if (base.p95_ns_per_query > 0.0 &&
        cur->p95_ns_per_query > base.p95_ns_per_query * (1.0 + tolerance)) {
      result.regressions.push_back({base.key(), base.p95_ns_per_query, cur->p95_ns_per_query,
                                    cur->p95_ns_per_query / base.p95_ns_per_query});
    }
  }
  return result;
}

}  // namespace hrf::bench
