#pragma once

// Machine-readable benchmark harness + regression gate (docs/benchmarking.md).
//
// run_sweep() measures every valid {variant x backend x batch} combination
// over one synthetic random forest, with an explicit warmup/repeat policy,
// and produces a schema-versioned report (BENCH_hrf.json) carrying an
// environment fingerprint and per-configuration ns/query percentiles +
// throughput. compare_reports() is the regression gate: it matches cases
// by (variant, backend, batch) and flags any whose p95 ns/query grew by
// more than the tolerance — `hrf_cli bench --compare old.json` turns that
// into a nonzero exit code, so perf PRs land against a recorded baseline
// instead of a reviewer's memory.
//
// Simulated backends (GpuSim/FpgaSim) report *modeled* seconds, which are
// deterministic in (forest seed, query seed): two runs of the same build
// produce byte-identical case numbers, making the gate noise-free where
// the paper's comparisons live. CpuNative cases measure wall clock and
// inherit host noise; gate those with a wider tolerance.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/json.hpp"

namespace hrf::bench {

/// Current BENCH_hrf.json schema version. Bump on any field change;
/// compare_reports() refuses to diff across versions.
inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "hrf-bench";

/// Name <-> enum mapping shared by the CLI and the JSON report.
/// Accepts the canonical to_string() names plus the CLI's short aliases
/// ("cpu", "fil"); throws ConfigError on anything else.
Backend backend_from_name(const std::string& name);
Variant variant_from_name(const std::string& name);

struct SweepOptions {
  std::vector<Variant> variants{Variant::Csr, Variant::Independent, Variant::Collaborative,
                                Variant::Hybrid};
  std::vector<Backend> backends{Backend::CpuNative, Backend::GpuSim, Backend::FpgaSim};
  std::vector<std::size_t> batch_sizes{64, 256};
  /// Untimed runs per case before measurement (page-in, cache warmup).
  int warmup_runs = 1;
  /// Timed runs per case; percentiles are taken over these.
  int repeat_runs = 5;
  /// Synthetic workload: a random forest topology + uniform queries.
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  HierConfig layout{};
  std::uint64_t query_seed = 42;
};

/// One measured configuration.
struct CaseResult {
  std::string variant;
  std::string backend;
  std::size_t batch = 0;
  int repeats = 0;
  bool simulated = true;
  double p50_ns_per_query = 0.0;
  double p95_ns_per_query = 0.0;
  double p99_ns_per_query = 0.0;
  double max_ns_per_query = 0.0;
  double mean_ns_per_query = 0.0;
  double throughput_qps = 0.0;  // 1e9 / p50 ns/query

  std::string key() const { return variant + "/" + backend + "/" + std::to_string(batch); }
};

/// Where the numbers came from — enough to spot an apples-to-oranges
/// comparison (different host, compiler, or thread count) in review.
struct EnvFingerprint {
  std::string hostname;
  std::string compiler;
  std::string build;  // "release" / "debug" (NDEBUG at harness build time)
  int omp_max_threads = 0;
  std::string timestamp_utc;  // ISO-8601, informational only

  static EnvFingerprint capture();
};

/// Tracing-overhead micro-benchmark (docs/observability.md): the same
/// serving workload is driven twice through a ForestServer — sampling 0.0
/// (tracing compiled in but every trace declined) and 1.0 (every request
/// fully traced, per-chunk spans included) — and the end-to-end p95s are
/// compared. Both runs use the identical chunked execution path, so the
/// ratio isolates the tracer's own cost.
struct TraceOverheadOptions {
  std::size_t requests = 200;
  // Large enough that one request is ~1ms of real work: the tracer's cost
  // is a few microseconds per request, and the gate must measure it above
  // the host's scheduler jitter (~10us tail), not inside it.
  std::size_t batch = 1024;
  std::size_t num_workers = 2;
  std::size_t chunk_size = 256;
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  std::uint64_t query_seed = 42;
};

struct TraceOverheadResult {
  std::size_t requests = 0;
  std::size_t batch = 0;
  double p95_off_ns = 0.0;  // end-to-end p95, sampling 0.0
  double p95_on_ns = 0.0;   // end-to-end p95, sampling 1.0
  double ratio = 0.0;       // on / off; <= 1 + tolerance to pass the gate
};

TraceOverheadResult measure_trace_overhead(const TraceOverheadOptions& options);

/// Shadow-audit overhead micro-benchmark (docs/robustness.md): the same
/// serving workload is driven twice through a ForestServer — integrity
/// audits off, then sampling every `sample_every`-th request through the
/// CPU-oracle re-execution + compare path — and the end-to-end p95s are
/// compared. An audited request pays a full oracle pass, so the *sampled*
/// rate is what keeps the p95 flat; this case pins that claim the same
/// way the tracing case pins the tracer's cost.
struct AuditOverheadOptions {
  std::size_t requests = 200;
  std::size_t batch = 1024;
  std::size_t num_workers = 2;
  /// Every Nth request is shadow-audited in the "on" run. At 1/32 the
  /// audited tail sits above the 95th percentile, so the gate measures
  /// the steady-state cost of the machinery, not the oracle itself.
  std::size_t sample_every = 32;
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  std::uint64_t query_seed = 42;
};

struct AuditOverheadResult {
  std::size_t requests = 0;
  std::size_t batch = 0;
  std::size_t sample_every = 0;
  double p95_off_ns = 0.0;  // end-to-end p95, audits off
  double p95_on_ns = 0.0;   // end-to-end p95, audits sampled 1/sample_every
  double ratio = 0.0;       // on / off; <= 1 + tolerance to pass the gate
};

AuditOverheadResult measure_audit_overhead(const AuditOverheadOptions& options);

/// Observability-overhead micro-benchmark (docs/observability.md): the
/// same serving workload is driven twice through a ForestServer — bare,
/// and with the full third pillar armed (flight recorder wired into the
/// server, a Monitor thread sampling windows on `interval_seconds`
/// cadence, SLO burn-rate engine evaluating every window) — and the
/// end-to-end p95s are compared. The monitor runs on its own thread, but
/// each tick snapshots the same counter/histogram state the workers
/// write, so the ratio measures the contention the pillar adds to the
/// serving path.
struct ObsOverheadOptions {
  std::size_t requests = 200;
  std::size_t batch = 1024;
  std::size_t num_workers = 2;
  /// Monitor cadence for the "on" run: the documented production default.
  double interval_seconds = 0.25;
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  std::uint64_t query_seed = 42;
};

struct ObsOverheadResult {
  std::size_t requests = 0;
  std::size_t batch = 0;
  double interval_seconds = 0.0;
  double p95_off_ns = 0.0;  // end-to-end p95, monitor off
  double p95_on_ns = 0.0;   // end-to-end p95, recorder + monitor + SLO engine on
  double ratio = 0.0;       // on / off; <= 1 + tolerance to pass the gate
};

ObsOverheadResult measure_obs_overhead(const ObsOverheadOptions& options);

/// Cluster serving micro-benchmark (docs/cluster.md): a ClusterRouter
/// fronting `shards` healthy ForestServer shards absorbs `requests`
/// routed requests from `clients` concurrent client threads, and the
/// router-observed end-to-end p95 plus aggregate throughput are
/// reported. Wall-clock numbers — gate with the same tolerance as the
/// CpuNative cases, not the simulated ones.
struct ClusterBenchOptions {
  std::size_t shards = 4;
  std::size_t requests = 120;  // total across all clients
  std::size_t clients = 4;
  std::size_t batch = 256;
  std::size_t workers_per_shard = 1;
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  std::uint64_t query_seed = 42;
};

struct ClusterBenchResult {
  std::size_t shards = 0;
  std::size_t requests = 0;
  std::size_t batch = 0;
  double p95_ns = 0.0;  // router-observed end-to-end p95 per request
  double qps = 0.0;     // completed requests / wall seconds
};

ClusterBenchResult measure_cluster(const ClusterBenchOptions& options);

/// Noisy-neighbor serving micro-benchmark (docs/cluster.md): a fleet with
/// per-tenant admission quotas serves a "victim" tenant while a "surger"
/// tenant floods it from spinning clients, each admitted surge request
/// stalling a worker for `surge_stall_seconds` (the surge:tenant fault
/// site). The victim-observed end-to-end p95 is the number under gate:
/// it measures how well admission isolates a tenant from a hostile
/// co-tenant, the QoS analogue of the healthy-fleet cluster case.
/// Wall-clock numbers — gate with the CpuNative tolerance.
struct NoisyNeighborOptions {
  std::size_t shards = 4;
  std::size_t requests = 120;  // victim requests, total across clients
  std::size_t clients = 2;     // victim client threads
  std::size_t surge_clients = 8;
  std::size_t batch = 256;
  std::size_t workers_per_shard = 2;
  /// Small on purpose: quotas meter queue slots, so shedding only bites
  /// when the queue is scarce relative to the surge.
  std::size_t queue_capacity = 5;
  /// 4:1 over capacity 5 reserves the whole queue (4 victim + 1 surger
  /// slots, empty spare pool), so the surger has exactly one queued
  /// request per shard and everything past it is shed at admission.
  double victim_weight = 4.0;
  double surger_weight = 1.0;
  /// Worker stall per admitted surge request (makes the surge heavy as
  /// well as frequent, like the chaos scenario it mirrors). Long enough
  /// that admitted surge requests pile the queue up behind the stalled
  /// workers — that is what forces admission, not deadlines, to shed.
  double surge_stall_seconds = 0.001;
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  std::uint64_t query_seed = 42;
};

struct NoisyNeighborResult {
  std::size_t shards = 0;
  std::size_t requests = 0;
  std::size_t batch = 0;
  double victim_p95_ns = 0.0;      // victim end-to-end p95 under the surge
  double victim_success = 0.0;     // victim ok / victim attempts
  std::uint64_t surger_shed = 0;   // surge requests absorbed by QuotaError
  double victim_qps = 0.0;         // victim completions / wall seconds
};

NoisyNeighborResult measure_noisy_neighbor(const NoisyNeighborOptions& options);

/// Micro-batching serving benchmark (docs/serving.md, "Dynamic
/// micro-batching"): one ForestServer absorbs many small concurrent
/// requests twice — batching off, then batching on with `batch_max` —
/// and the end-to-end p95 plus throughput of each run are reported. The
/// batched run's p95 is the number under gate (key "batch"); `speedup`
/// (batched qps / unbatched qps) is the paper's amortization story made
/// measurable at the serving layer. Wall-clock numbers — gate with the
/// CpuNative tolerance.
struct BatchBenchOptions {
  std::size_t clients = 32;    // concurrent client threads
  std::size_t requests = 320;  // total per run, split across clients
  /// Rows per request: a small warp fraction, so unbatched dispatch
  /// under-fills the simulated device and batching has headroom.
  std::size_t rows = 4;
  std::size_t workers = 2;
  std::size_t batch_max = 16;  // members per formed batch in the batched run
  double batch_wait_seconds = 500e-6;
  RandomForestSpec forest{.num_trees = 20, .max_depth = 10, .num_features = 16};
  std::uint64_t query_seed = 42;
};

struct BatchBenchResult {
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t rows = 0;
  std::size_t batch_max = 0;
  double p95_unbatched_ns = 0.0;  // end-to-end p95, batching off
  double p95_batched_ns = 0.0;    // end-to-end p95, batching on (gated)
  double qps_unbatched = 0.0;
  double qps_batched = 0.0;
  double speedup = 0.0;  // qps_batched / qps_unbatched
};

BatchBenchResult measure_batch(const BatchBenchOptions& options);

struct BenchReport {
  int schema_version = kSchemaVersion;
  EnvFingerprint env;
  int warmup_runs = 0;
  int repeat_runs = 0;
  RandomForestSpec forest;
  std::uint64_t query_seed = 0;
  std::vector<CaseResult> cases;
  /// Present when the sweep ran with the tracing-overhead case; optional
  /// so older baselines stay readable under the same schema version.
  std::optional<TraceOverheadResult> trace_overhead;
  /// Present when the sweep ran with the shadow-audit overhead case;
  /// gated like trace_overhead (ratio vs 1 + trace_tolerance).
  std::optional<AuditOverheadResult> audit_overhead;
  /// Present when the sweep ran with the observability-overhead case;
  /// gated like trace_overhead (ratio vs 1 + trace_tolerance).
  std::optional<ObsOverheadResult> obs_overhead;
  /// Present when the sweep ran with the cluster serving case; compared
  /// like a regular case under the key "cluster".
  std::optional<ClusterBenchResult> cluster;
  /// Present when the sweep ran with the noisy-neighbor QoS case; the
  /// victim p95 is compared under the key "noisy".
  std::optional<NoisyNeighborResult> noisy;
  /// Present when the sweep ran with the micro-batching serve case; the
  /// batched p95 is compared under the key "batch".
  std::optional<BatchBenchResult> batch;
};

/// Runs the sweep, skipping invalid combinations (collaborative/hybrid
/// on cpu-native model on-chip memory and do not exist there).
BenchReport run_sweep(const SweepOptions& options);

json::Value to_json(const BenchReport& report);
/// Throws FormatError on schema name/version mismatch or missing fields.
BenchReport report_from_json(const json::Value& v);

void save_report(const BenchReport& report, const std::string& path);
BenchReport load_report(const std::string& path);

/// One flagged p95 regression.
struct Regression {
  std::string key;
  double baseline_p95 = 0.0;
  double current_p95 = 0.0;
  double ratio = 0.0;  // current / baseline
};

struct CompareResult {
  int compared = 0;                        // cases present in both reports
  std::vector<Regression> regressions;     // p95 grew past tolerance
  std::vector<std::string> missing_cases;  // in baseline but not current
  /// Tracing-overhead gate: fails when the current report carries a
  /// trace_overhead case whose on/off p95 ratio exceeds 1 + trace_tolerance.
  bool trace_overhead_ok = true;
  double trace_overhead_ratio = 0.0;  // 0 when the case is absent
  /// Shadow-audit overhead gate: same shape and tolerance as the tracing
  /// gate, applied to the current report's audit_overhead ratio.
  bool audit_overhead_ok = true;
  double audit_overhead_ratio = 0.0;  // 0 when the case is absent
  /// Observability-overhead gate: same shape and tolerance again, applied
  /// to the current report's obs_overhead ratio (monitor + recorder +
  /// SLO engine must cost <= trace_tolerance of serve p95).
  bool obs_overhead_ok = true;
  double obs_overhead_ratio = 0.0;  // 0 when the case is absent

  bool passed() const {
    return regressions.empty() && missing_cases.empty() && trace_overhead_ok &&
           audit_overhead_ok && obs_overhead_ok;
  }
};

/// Flags current cases whose p95 ns/query exceeds baseline * (1 + tolerance).
/// tolerance 0.25 = fail on >25% p95 growth. Cases only in `current` are
/// new coverage, not failures; cases only in `baseline` are missing.
/// trace_tolerance gates the current report's own trace_overhead AND
/// audit_overhead ratios (tracing everything / sampled shadow audits must
/// each cost < 5% serve p95 by default).
/// A baseline cluster case is matched under the key "cluster", a
/// baseline noisy-neighbor case under the key "noisy" (victim p95), and
/// a baseline micro-batching case under the key "batch" (batched p95),
/// all with the same p95 gate (missing from `current` = missing case).
CompareResult compare_reports(const BenchReport& baseline, const BenchReport& current,
                              double tolerance, double trace_tolerance = 0.05);

}  // namespace hrf::bench
