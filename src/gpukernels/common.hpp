#pragma once

// Internal helpers shared by the simulated GPU kernels. Not part of the
// public API (bench/test code should use kernels.hpp).

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "forest/forest.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_array.hpp"
#include "gpukernels/kernels.hpp"
#include "util/error.hpp"

namespace hrf::gpukernels::detail {

inline constexpr int kWarpSize = 32;

/// Query matrix mirrored on the device (row-major, as the paper stores it).
struct QueryView {
  const Dataset* data;
  gpusim::DeviceArray<float> features;

  QueryView(gpusim::Device& device, const Dataset& queries)
      : data(&queries), features(device, queries.features()) {
    require(queries.num_samples() > 0, "no queries to classify");
  }

  std::size_t count() const { return data->num_samples(); }
  std::size_t width() const { return data->num_features(); }
  float value(std::size_t q, std::size_t f) const { return features[q * width() + f]; }
  std::uint64_t addr(std::size_t q, std::size_t f) const {
    return features.addr(q * width() + f);
  }
};

/// Iterates the kernel grid: one thread per query, `block_size` threads per
/// block, block b resident on SM (b mod num_sms). `fn(sm, first_query,
/// active_mask)` is invoked once per warp; the mask covers lanes whose
/// query id is in range.
template <typename Fn>
void for_each_warp(const gpusim::DeviceConfig& cfg, std::size_t num_queries, Fn&& fn) {
  const std::size_t block_size = static_cast<std::size_t>(cfg.block_size);
  const std::size_t num_blocks = (num_queries + block_size - 1) / block_size;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const int sm = static_cast<int>(b % static_cast<std::size_t>(cfg.num_sms));
    for (std::size_t w = 0; w < block_size / kWarpSize; ++w) {
      const std::size_t first = b * block_size + w * kWarpSize;
      if (first >= num_queries) break;
      std::uint32_t active = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (first + static_cast<std::size_t>(l) < num_queries) active |= 1u << l;
      }
      fn(sm, first, active);
    }
  }
}

/// Writes out per-query majority votes as the kernel's final global store
/// and returns the predictions. `votes` is a row-major (query x class)
/// histogram; the winner rule is Forest::vote_winner (ties to the higher
/// class id = Fig. 1a's `tmp < N/2 ? A : B` in the binary case).
inline std::vector<std::uint8_t> finalize_votes(gpusim::Device& device,
                                                const std::vector<std::uint32_t>& votes,
                                                std::size_t num_queries,
                                                std::size_t num_classes) {
  std::vector<std::uint8_t> out(num_queries);
  gpusim::DeviceArray<std::uint8_t> result_buf(device, out);
  for_each_warp(device.config(), num_queries, [&](int sm, std::size_t first, std::uint32_t active) {
    std::uint64_t addrs[kWarpSize] = {};
    for (int l = 0; l < kWarpSize; ++l) {
      const std::size_t q = first + static_cast<std::size_t>(l);
      if (!(active & (1u << l))) continue;
      out[q] = Forest::vote_winner({votes.data() + q * num_classes, num_classes});
      addrs[l] = result_buf.addr(q);
    }
    device.warp_store(sm, addrs, active, 1);
  });
  return out;
}

}  // namespace hrf::gpukernels::detail
