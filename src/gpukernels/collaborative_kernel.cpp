#include "gpukernels/common.hpp"
#include "gpukernels/packed_node.hpp"
#include "gpukernels/kernels.hpp"
#include "util/math.hpp"

namespace hrf::gpukernels {

using detail::kWarpSize;

namespace {
constexpr std::uint32_t kDone = 0xffffffffu;
}

/// Collaborative code variant (paper §3.2, second kernel in Fig. 4):
/// subtrees are batch-loaded into shared memory and *all* queries are
/// walked through *every* subtree of the current tree in lock step; a
/// query that is not "present" in the subtree idles through the guard
/// branch. This trades one coalesced load per subtree for massive wasted
/// work on deep levels — the paper measures a 10-20x slowdown vs. the
/// independent variant, which this model reproduces.
KernelResult run_collaborative(gpusim::Device& device, const HierarchicalForest& forest,
                               const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const auto& cfg = device.config();
  const detail::QueryView q(device, queries);
  const std::vector<PackedNode> packed = pack_nodes(forest);
  const gpusim::DeviceArray<PackedNode> nodes(device, packed);
  const gpusim::DeviceArray<std::int32_t> connection(device, forest.subtree_connection());

  // Shared-memory batch capacity in packed 8-byte nodes (§3.2: 48 bits of
  // attributes per node, padded to the 8 B the hardware loads).
  const std::size_t batch_nodes_cap = cfg.shared_mem_per_block / sizeof(PackedNode);
  require(batch_nodes_cap >= complete_tree_nodes(forest.config().subtree_depth),
          "collaborative kernel: one subtree must fit in shared memory");

  const auto k = static_cast<std::size_t>(forest.num_classes());
  std::vector<std::uint32_t> votes(q.count() * k, 0);

  const std::size_t block_size = static_cast<std::size_t>(cfg.block_size);
  const std::size_t num_blocks = (q.count() + block_size - 1) / block_size;
  const std::size_t warps_per_block = block_size / kWarpSize;

  // Per-lane traversal state, indexed [warp][lane] within the block.
  std::vector<std::uint32_t> pending(block_size);

  for (std::size_t b = 0; b < num_blocks; ++b) {
    const int sm = static_cast<int>(b % static_cast<std::size_t>(cfg.num_sms));

    for (std::size_t t = 0; t < forest.num_trees(); ++t) {
      const std::uint32_t st_begin = forest.tree_subtree_begin()[t];
      const std::uint32_t st_end = forest.tree_subtree_begin()[t + 1];
      for (std::size_t i = 0; i < block_size; ++i) pending[i] = st_begin;

      std::uint32_t batch_first = st_begin;
      while (batch_first < st_end) {
        // Grow the batch until shared memory is full.
        std::uint32_t batch_last = batch_first;
        std::size_t batch_nodes = 0;
        while (batch_last < st_end) {
          const std::size_t n = complete_tree_nodes(forest.subtree_depth(batch_last));
          if (batch_nodes + n > batch_nodes_cap) break;
          batch_nodes += n;
          ++batch_last;
        }

        // Cooperative, coalesced staging of the whole batch.
        {
          std::uint64_t addrs[kWarpSize];
          const std::uint32_t base_off = forest.subtree_node_offset(batch_first);
          for (std::size_t chunk = 0; chunk < batch_nodes; chunk += kWarpSize) {
            std::uint32_t mask = 0;
            for (int l = 0; l < kWarpSize; ++l) {
              const std::size_t i = chunk + static_cast<std::size_t>(l);
              if (i < batch_nodes) {
                mask |= 1u << l;
                addrs[l] = nodes.addr(base_off + i);
              }
            }
            device.warp_load(sm, addrs, mask, sizeof(PackedNode));
            device.smem_store(1);
          }
        }

        // Walk every query through every subtree of the batch.
        for (std::uint32_t st = batch_first; st < batch_last; ++st) {
          const std::uint32_t off = forest.subtree_node_offset(st);
          const int d = forest.subtree_depth(st);
          const std::uint32_t bottom_first = static_cast<std::uint32_t>(pow2(d - 1) - 1);
          const std::uint32_t coff = forest.connection_offset(st);

          for (std::size_t w = 0; w < warps_per_block; ++w) {
            const std::size_t first = b * block_size + w * kWarpSize;
            if (first >= q.count()) break;
            std::uint32_t warp_mask = 0;
            for (int l = 0; l < kWarpSize; ++l) {
              if (first + static_cast<std::size_t>(l) < q.count()) warp_mask |= 1u << l;
            }

            // Presence guard: every lane pays this branch for every
            // subtree — the variant's structural overhead.
            std::uint32_t present = 0;
            for (int l = 0; l < kWarpSize; ++l) {
              if ((warp_mask & (1u << l)) &&
                  pending[w * kWarpSize + static_cast<std::size_t>(l)] == st) {
                present |= 1u << l;
              }
            }
            device.warp_branch(present, warp_mask);
            device.add_instructions(1);
            if (present == 0) continue;

            std::uint32_t pos[kWarpSize] = {};
            std::uint32_t active = present;
            std::uint64_t addrs[kWarpSize] = {};
            int steps_taken = 0;
            while (active != 0) {
              ++steps_taken;
              device.smem_load(1);
              std::uint32_t leaf_mask = 0;
              for (int l = 0; l < kWarpSize; ++l) {
                if ((active & (1u << l)) && packed[off + pos[l]].feature == kLeafFeature) {
                  leaf_mask |= 1u << l;
                }
              }
              device.warp_branch(leaf_mask, active);
              for (int l = 0; l < kWarpSize; ++l) {
                if (leaf_mask & (1u << l)) {
                  ++votes[(first + static_cast<std::size_t>(l)) * k +
                          static_cast<std::uint8_t>(packed[off + pos[l]].value)];
                  pending[w * kWarpSize + static_cast<std::size_t>(l)] = kDone;
                }
              }
              active &= ~leaf_mask;
              if (active == 0) break;

              for (int l = 0; l < kWarpSize; ++l) {
                if (!(active & (1u << l))) continue;
                const auto f = static_cast<std::size_t>(packed[off + pos[l]].feature);
                addrs[l] = q.addr(first + static_cast<std::size_t>(l), f);
              }
              device.warp_load(sm, addrs, active, sizeof(float));

              std::uint32_t left_mask = 0;
              std::uint32_t hop_mask = 0;
              for (int l = 0; l < kWarpSize; ++l) {
                if (!(active & (1u << l))) continue;
                const PackedNode& n = packed[off + pos[l]];
                const bool go_left =
                    q.value(first + static_cast<std::size_t>(l),
                            static_cast<std::size_t>(n.feature)) < n.value;
                if (go_left) left_mask |= 1u << l;
                if (pos[l] >= bottom_first) {
                  hop_mask |= 1u << l;
                  const std::uint32_t ci = coff + 2 * (pos[l] - bottom_first) + (go_left ? 0u : 1u);
                  addrs[l] = connection.addr(ci);
                  pending[w * kWarpSize + static_cast<std::size_t>(l)] =
                      static_cast<std::uint32_t>(connection[ci]);
                } else {
                  pos[l] = 2 * pos[l] + (go_left ? 1u : 2u);
                }
              }
              device.add_instructions(1);  // left/right pick compiles to a predicated select
              device.warp_branch(hop_mask, active);
              if (hop_mask != 0) device.warp_load(sm, addrs, hop_mask, sizeof(std::int32_t));
              active &= ~hop_mask;
              device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
            }
            // Lock-step waste (paper §3.2.1): the warp walks the *full*
            // subtree pipeline even when its present lanes exit early —
            // non-present and finished lanes idle through the remaining
            // levels, still occupying issue slots and shared-memory reads.
            for (int s = steps_taken; s < d; ++s) {
              device.smem_load(1);
              device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step) + 1);
            }
          }
        }
        batch_first = batch_last;
      }
    }
  }

  KernelResult r;
  r.predictions = detail::finalize_votes(device, votes, q.count(), k);
  r.counters = device.counters();
  r.timing = device.estimate();
  return r;
}

}  // namespace hrf::gpukernels
