#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "forest/forest.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::gpukernels {

/// Result of one simulated kernel launch: exact functional predictions
/// plus the performance counters and the roofline time estimate.
struct KernelResult {
  std::vector<std::uint8_t> predictions;
  gpusim::Counters counters;
  gpusim::Timing timing;
};

/// Baseline: one thread per query, CSR topology in global memory
/// (paper §2.3). Four dependent global loads per traversal step.
KernelResult run_csr(gpusim::Device& device, const CsrForest& csr, const Dataset& queries);

/// Independent code variant on the hierarchical layout (§3.2): one thread
/// per query, subtrees read from global memory, arithmetic child indexing
/// inside subtrees.
KernelResult run_independent(gpusim::Device& device, const HierarchicalForest& forest,
                             const Dataset& queries);

/// Collaborative code variant (§3.2): subtrees are batch-loaded into
/// shared memory and *every* query is walked through *every* subtree in
/// lock-step. Kept for completeness — the paper reports it 10-20x slower
/// than the independent variant on GPU.
KernelResult run_collaborative(gpusim::Device& device, const HierarchicalForest& forest,
                               const Dataset& queries);

/// Hybrid code variant (§3.2): each tree's root subtree is cooperatively
/// staged into shared memory (stage 1, coalesced + divergence-free
/// residency), remaining subtrees are traversed independently from global
/// memory (stage 2).
KernelResult run_hybrid(gpusim::Device& device, const HierarchicalForest& forest,
                        const Dataset& queries);

/// cuML Forest Inference Library stand-in: per-tree nodes packed as
/// 16-byte structs with adjacent children (FIL's sparse storage), one
/// query per thread iterating over all trees. One global load per
/// traversal step. Serves as the paper's cuML comparison point.
KernelResult run_fil_baseline(gpusim::Device& device, const Forest& forest,
                              const Dataset& queries);

}  // namespace hrf::gpukernels
