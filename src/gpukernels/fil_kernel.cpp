#include "gpukernels/common.hpp"
#include "gpukernels/kernels.hpp"

#include <deque>

namespace hrf::gpukernels {

using detail::kWarpSize;

namespace {

/// cuML FIL "sparse16" style node: 16 bytes, children stored adjacently so
/// one aligned load fetches everything a traversal step needs.
struct FilNode {
  std::int32_t feature = kLeafFeature;  // -1 marks a leaf
  float value = 0.0f;                   // threshold or leaf vote
  std::int32_t left = -1;               // tree-local index; right = left + 1
  std::int32_t pad = 0;
};
static_assert(sizeof(FilNode) == 16);

/// Flattened FIL forest: per-tree node arrays with BFS ordering (children
/// of a node are adjacent, levels contiguous) plus tree start offsets.
struct FilForest {
  std::vector<FilNode> nodes;
  std::vector<std::uint32_t> tree_offset;  // size T+1

  static FilForest build(const Forest& forest) {
    FilForest f;
    f.tree_offset.reserve(forest.tree_count() + 1);
    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      const DecisionTree& tree = forest.tree(t);
      f.tree_offset.push_back(static_cast<std::uint32_t>(f.nodes.size()));
      const auto base = f.nodes.size();
      // BFS emission with adjacent child pairs.
      std::deque<std::int32_t> queue{0};
      std::vector<std::int32_t> renum(tree.node_count(), -1);
      std::int32_t next = 0;
      while (!queue.empty()) {
        const std::int32_t old_id = queue.front();
        queue.pop_front();
        renum[static_cast<std::size_t>(old_id)] = next++;
        const TreeNode& n = tree.node(static_cast<std::size_t>(old_id));
        if (!n.is_leaf()) {
          queue.push_back(n.left);
          queue.push_back(n.right);
        }
      }
      f.nodes.resize(base + tree.node_count());
      std::vector<std::int32_t> order(tree.node_count());
      for (std::size_t old_id = 0; old_id < tree.node_count(); ++old_id) {
        order[static_cast<std::size_t>(renum[old_id])] = static_cast<std::int32_t>(old_id);
      }
      std::int32_t emitted_children = 1;  // BFS slot of the next child pair
      for (std::size_t k = 0; k < order.size(); ++k) {
        const TreeNode& n = tree.node(static_cast<std::size_t>(order[k]));
        FilNode& fn = f.nodes[base + k];
        fn.feature = n.feature;
        fn.value = n.value;
        if (!n.is_leaf()) {
          fn.left = emitted_children;  // children occupy the next BFS pair
          emitted_children += 2;
        }
      }
    }
    f.tree_offset.push_back(static_cast<std::uint32_t>(f.nodes.size()));
    return f;
  }
};

}  // namespace

/// cuML FIL stand-in (paper's §4.3 comparison point): one query per
/// thread, iterating all trees; each traversal step costs a single 16-byte
/// node load plus the query-feature load. No separate topology arrays —
/// this is what makes FIL ~4-5x faster than CSR, and what larger-SD
/// hierarchical layouts beat by adding shared-memory residency.
KernelResult run_fil_baseline(gpusim::Device& device, const Forest& forest,
                              const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const FilForest fil = FilForest::build(forest);
  const detail::QueryView q(device, queries);
  const gpusim::DeviceArray<FilNode> nodes(device, fil.nodes);
  const gpusim::DeviceArray<std::uint32_t> tree_offset(device, fil.tree_offset);

  const auto& cfg = device.config();
  const auto k = static_cast<std::size_t>(forest.num_classes());
  std::vector<std::uint32_t> votes(q.count() * k, 0);

  detail::for_each_warp(cfg, q.count(), [&](int sm, std::size_t first, std::uint32_t warp_mask) {
    std::uint64_t addrs[kWarpSize] = {};
    std::uint32_t lane_node[kWarpSize] = {};

    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      addrs[0] = tree_offset.addr(t);
      device.warp_load(sm, {addrs, 1}, 1u, sizeof(std::uint32_t));
      const std::uint32_t base = fil.tree_offset[t];
      for (int l = 0; l < kWarpSize; ++l) lane_node[l] = base;

      std::uint32_t active = warp_mask;
      while (active != 0) {
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = nodes.addr(lane_node[l]);
        device.warp_load(sm, addrs, active, sizeof(FilNode));

        std::uint32_t leaf_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if ((active & (1u << l)) && fil.nodes[lane_node[l]].feature == kLeafFeature) {
            leaf_mask |= 1u << l;
          }
        }
        device.warp_branch(leaf_mask, active);
        for (int l = 0; l < kWarpSize; ++l) {
          if (leaf_mask & (1u << l)) {
            ++votes[(first + static_cast<std::size_t>(l)) * k +
                    static_cast<std::uint8_t>(fil.nodes[lane_node[l]].value)];
          }
        }
        active &= ~leaf_mask;
        if (active == 0) break;

        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          const FilNode& n = fil.nodes[lane_node[l]];
          addrs[l] = q.addr(first + static_cast<std::size_t>(l),
                            static_cast<std::size_t>(n.feature));
        }
        device.warp_load(sm, addrs, active, sizeof(float));

        std::uint32_t left_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          const FilNode& n = fil.nodes[lane_node[l]];
          const bool go_left = q.value(first + static_cast<std::size_t>(l),
                                       static_cast<std::size_t>(n.feature)) < n.value;
          if (go_left) left_mask |= 1u << l;
          lane_node[l] = base + static_cast<std::uint32_t>(n.left) + (go_left ? 0u : 1u);
        }
        device.add_instructions(1);  // left/right pick compiles to a predicated select
        device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
      }
    }
  });

  KernelResult r;
  r.predictions = detail::finalize_votes(device, votes, q.count(), k);
  r.counters = device.counters();
  r.timing = device.estimate();
  return r;
}

}  // namespace hrf::gpukernels
