#include "gpukernels/common.hpp"
#include "gpukernels/kernels.hpp"
#include "gpukernels/packed_node.hpp"
#include "util/math.hpp"

namespace hrf::gpukernels {

using detail::kWarpSize;

/// Independent code variant (paper §3.2, first kernel in Fig. 4): one
/// thread per query; all subtree data stays in global memory. A step costs
/// ONE packed node load (feature + value travel together, §3.2's 48-bit
/// node record) plus the query-feature read — children are found
/// arithmetically (2n+1 / 2n+2). The CSR-like indirection (connection
/// entry + subtree metadata) is paid only when crossing to the next
/// subtree, i.e. once every SD levels.
KernelResult run_independent(gpusim::Device& device, const HierarchicalForest& forest,
                             const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const detail::QueryView q(device, queries);
  const std::vector<PackedNode> packed = pack_nodes(forest);
  const gpusim::DeviceArray<PackedNode> nodes(device, packed);
  const gpusim::DeviceArray<std::uint32_t> node_offset(device, forest.subtree_node_offsets());
  const gpusim::DeviceArray<std::uint8_t> subtree_depth(device, forest.subtree_depths());
  const gpusim::DeviceArray<std::uint32_t> conn_offset(device, forest.connection_offsets());
  const gpusim::DeviceArray<std::int32_t> connection(device, forest.subtree_connection());

  const auto& cfg = device.config();
  const auto k = static_cast<std::size_t>(forest.num_classes());
  std::vector<std::uint32_t> votes(q.count() * k, 0);

  struct Lane {
    std::uint32_t subtree = 0;
    std::uint32_t pos = 0;
    std::uint32_t off = 0;
    std::uint32_t bottom_first = 0;
    std::uint32_t coff = 0;
  };

  detail::for_each_warp(cfg, q.count(), [&](int sm, std::size_t first, std::uint32_t warp_mask) {
    Lane lanes[kWarpSize];
    std::uint64_t addrs[kWarpSize] = {};

    // Loads the per-subtree metadata for every lane in `mask` (node offset,
    // depth, connection offset) — the indirect accesses paid per hop.
    const auto enter_subtree = [&](std::uint32_t mask) {
      for (int l = 0; l < kWarpSize; ++l) addrs[l] = node_offset.addr(lanes[l].subtree);
      device.warp_load(sm, addrs, mask, sizeof(std::uint32_t));
      for (int l = 0; l < kWarpSize; ++l) addrs[l] = subtree_depth.addr(lanes[l].subtree);
      device.warp_load(sm, addrs, mask, sizeof(std::uint8_t));
      for (int l = 0; l < kWarpSize; ++l) addrs[l] = conn_offset.addr(lanes[l].subtree);
      device.warp_load(sm, addrs, mask, sizeof(std::uint32_t));
      for (int l = 0; l < kWarpSize; ++l) {
        if (!(mask & (1u << l))) continue;
        Lane& ln = lanes[l];
        ln.pos = 0;
        ln.off = node_offset[ln.subtree];
        ln.bottom_first =
            static_cast<std::uint32_t>(pow2(subtree_depth[ln.subtree] - 1) - 1);
        ln.coff = conn_offset[ln.subtree];
      }
    };

    for (std::size_t t = 0; t < forest.num_trees(); ++t) {
      for (int l = 0; l < kWarpSize; ++l) {
        lanes[l].subtree = forest.root_subtree(t);
      }
      enter_subtree(warp_mask);

      std::uint32_t active = warp_mask;
      while (active != 0) {
        // One packed node load per step; within a subtree these sit in one
        // contiguous array, so nearby positions share cache lines.
        for (int l = 0; l < kWarpSize; ++l) {
          addrs[l] = nodes.addr(lanes[l].off + lanes[l].pos);
        }
        device.warp_load(sm, addrs, active, sizeof(PackedNode));

        std::uint32_t leaf_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if ((active & (1u << l)) &&
              packed[lanes[l].off + lanes[l].pos].feature == kLeafFeature) {
            leaf_mask |= 1u << l;
          }
        }
        device.warp_branch(leaf_mask, active);
        for (int l = 0; l < kWarpSize; ++l) {
          if (leaf_mask & (1u << l)) {
            ++votes[(first + static_cast<std::size_t>(l)) * k +
                    static_cast<std::uint8_t>(packed[lanes[l].off + lanes[l].pos].value)];
          }
        }
        active &= ~leaf_mask;
        if (active == 0) break;

        // Query feature + comparison.
        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          const auto f =
              static_cast<std::size_t>(packed[lanes[l].off + lanes[l].pos].feature);
          addrs[l] = q.addr(first + static_cast<std::size_t>(l), f);
        }
        device.warp_load(sm, addrs, active, sizeof(float));

        std::uint32_t hop_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          Lane& ln = lanes[l];
          const PackedNode& n = packed[ln.off + ln.pos];
          const bool go_left =
              q.value(first + static_cast<std::size_t>(l), static_cast<std::size_t>(n.feature)) <
              n.value;
          if (ln.pos >= ln.bottom_first) {
            hop_mask |= 1u << l;  // bottom-level inner node: cross subtrees
            addrs[l] = connection.addr(ln.coff + 2 * (ln.pos - ln.bottom_first) +
                                       (go_left ? 0u : 1u));
          } else {
            ln.pos = 2 * ln.pos + (go_left ? 1u : 2u);
          }
        }
        device.add_instructions(1);  // left/right pick compiles to a predicated select
        device.warp_branch(hop_mask, active);
        if (hop_mask != 0) {
          device.warp_load(sm, addrs, hop_mask, sizeof(std::int32_t));
          for (int l = 0; l < kWarpSize; ++l) {
            if (!(hop_mask & (1u << l))) continue;
            Lane& ln = lanes[l];
            const PackedNode& n = packed[ln.off + ln.pos];
            const bool go_left =
                q.value(first + static_cast<std::size_t>(l),
                        static_cast<std::size_t>(n.feature)) < n.value;
            const std::uint32_t ci = ln.coff + 2 * (ln.pos - ln.bottom_first) + (go_left ? 0u : 1u);
            ln.subtree = static_cast<std::uint32_t>(connection[ci]);
          }
          enter_subtree(hop_mask);
        }
        device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
      }
    }
  });

  KernelResult r;
  r.predictions = detail::finalize_votes(device, votes, q.count(), k);
  r.counters = device.counters();
  r.timing = device.estimate();
  return r;
}

}  // namespace hrf::gpukernels
