#include "gpukernels/common.hpp"
#include "gpukernels/kernels.hpp"
#include "gpukernels/packed_node.hpp"
#include "util/fault.hpp"
#include "util/math.hpp"

namespace hrf::gpukernels {

using detail::kWarpSize;

/// Hybrid code variant (paper §3.2, third kernel in Fig. 4).
///
/// Stage 1: each thread block cooperatively stages the current tree's root
/// subtree (depth RSD, packed 8-byte nodes) into shared memory with
/// coalesced loads; every query traverses it from shared memory. Stage 2:
/// lanes leaving the root subtree continue independently through
/// global-memory subtrees exactly like the independent kernel. The root
/// subtree must fit in shared memory: (2^RSD - 1) * 8 B <= 48 KB, i.e.
/// RSD <= 12 on the TITAN Xp — which is why Table 2 stops at RSD 12.
KernelResult run_hybrid(gpusim::Device& device, const HierarchicalForest& forest,
                        const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const auto& cfg = device.config();

  // Shared-memory capacity check mirrors the real kernel's launch failure.
  fault_point("resource:gpu-smem");
  const std::size_t root_nodes = complete_tree_nodes(forest.config().effective_root_depth());
  const std::size_t smem_needed = root_nodes * sizeof(PackedNode);
  if (smem_needed > cfg.shared_mem_per_block) {
    throw ResourceError("hybrid kernel: root subtree (" + std::to_string(smem_needed) +
                        " B) exceeds shared memory (" +
                        std::to_string(cfg.shared_mem_per_block) + " B); reduce RSD");
  }

  const detail::QueryView q(device, queries);
  const std::vector<PackedNode> packed = pack_nodes(forest);
  const gpusim::DeviceArray<PackedNode> nodes(device, packed);
  const gpusim::DeviceArray<std::uint32_t> node_offset(device, forest.subtree_node_offsets());
  const gpusim::DeviceArray<std::uint8_t> subtree_depth(device, forest.subtree_depths());
  const gpusim::DeviceArray<std::uint32_t> conn_offset(device, forest.connection_offsets());
  const gpusim::DeviceArray<std::int32_t> connection(device, forest.subtree_connection());

  const auto k = static_cast<std::size_t>(forest.num_classes());
  std::vector<std::uint32_t> votes(q.count() * k, 0);

  struct Lane {
    std::uint32_t subtree = 0;
    std::uint32_t pos = 0;
    std::uint32_t off = 0;
    std::uint32_t bottom_first = 0;
    std::uint32_t coff = 0;
  };

  const std::size_t block_size = static_cast<std::size_t>(cfg.block_size);
  const std::size_t num_blocks = (q.count() + block_size - 1) / block_size;
  const std::size_t warps_per_block = block_size / kWarpSize;

  for (std::size_t b = 0; b < num_blocks; ++b) {
    const int sm = static_cast<int>(b % static_cast<std::size_t>(cfg.num_sms));

    for (std::size_t t = 0; t < forest.num_trees(); ++t) {
      const std::uint32_t root_st = forest.root_subtree(t);
      const std::uint32_t off0 = forest.subtree_node_offset(root_st);
      const int d0 = forest.subtree_depth(root_st);
      const std::uint32_t n0 = static_cast<std::uint32_t>(complete_tree_nodes(d0));
      const std::uint32_t bottom0 = static_cast<std::uint32_t>(pow2(d0 - 1) - 1);
      const std::uint32_t coff0 = forest.connection_offset(root_st);

      // --- Stage 1a: cooperative, coalesced staging of the root subtree:
      // consecutive lanes load consecutive packed nodes (one 128 B
      // transaction per 16 nodes).
      {
        std::uint64_t addrs[kWarpSize];
        for (std::uint32_t base = 0; base < n0; base += kWarpSize) {
          std::uint32_t mask = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            const std::uint32_t i = base + static_cast<std::uint32_t>(l);
            if (i < n0) {
              mask |= 1u << l;
              addrs[l] = nodes.addr(off0 + i);
            }
          }
          // Every resident block stages this subtree around the same time
          // on real hardware, so re-touches land in L2 (see LoadHint).
          device.warp_load(sm, addrs, mask, sizeof(PackedNode),
                           gpusim::Device::LoadHint::kTemporal);
          device.smem_store(1);
        }
      }

      // --- Stages 1b + 2, per warp of the block.
      for (std::size_t w = 0; w < warps_per_block; ++w) {
        const std::size_t first = b * block_size + w * kWarpSize;
        if (first >= q.count()) break;
        std::uint32_t warp_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if (first + static_cast<std::size_t>(l) < q.count()) warp_mask |= 1u << l;
        }

        Lane lanes[kWarpSize];
        std::uint64_t addrs[kWarpSize] = {};

        // Stage 1b: all lanes walk the root subtree out of shared memory.
        std::uint32_t pos1[kWarpSize] = {};
        std::uint32_t active = warp_mask;  // lanes still inside the root subtree
        std::uint32_t stage2_mask = 0;     // lanes that hopped to a gmem subtree
        while (active != 0) {
          device.smem_load(1);  // one packed node read from shared memory
          std::uint32_t leaf_mask = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if ((active & (1u << l)) && packed[off0 + pos1[l]].feature == kLeafFeature) {
              leaf_mask |= 1u << l;
            }
          }
          device.warp_branch(leaf_mask, active);
          for (int l = 0; l < kWarpSize; ++l) {
            if (leaf_mask & (1u << l)) {
              ++votes[(first + static_cast<std::size_t>(l)) * k +
                      static_cast<std::uint8_t>(packed[off0 + pos1[l]].value)];
            }
          }
          active &= ~leaf_mask;
          if (active == 0) break;

          for (int l = 0; l < kWarpSize; ++l) {
            if (!(active & (1u << l))) continue;
            const auto f = static_cast<std::size_t>(packed[off0 + pos1[l]].feature);
            addrs[l] = q.addr(first + static_cast<std::size_t>(l), f);
          }
          device.warp_load(sm, addrs, active, sizeof(float));

          std::uint32_t hop_mask = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if (!(active & (1u << l))) continue;
            const PackedNode& n = packed[off0 + pos1[l]];
            const bool go_left =
                q.value(first + static_cast<std::size_t>(l),
                        static_cast<std::size_t>(n.feature)) < n.value;
            if (pos1[l] >= bottom0) {
              hop_mask |= 1u << l;
              const std::uint32_t ci = coff0 + 2 * (pos1[l] - bottom0) + (go_left ? 0u : 1u);
              addrs[l] = connection.addr(ci);
              lanes[l].subtree = static_cast<std::uint32_t>(connection[ci]);
            } else {
              pos1[l] = 2 * pos1[l] + (go_left ? 1u : 2u);
            }
          }
          device.add_instructions(1);  // left/right pick compiles to a predicated select
          device.warp_branch(hop_mask, active);
          if (hop_mask != 0) device.warp_load(sm, addrs, hop_mask, sizeof(std::int32_t));
          stage2_mask |= hop_mask;
          active &= ~hop_mask;
          device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
        }

        // Stage 2: independent traversal of the remaining subtrees.
        const auto enter_subtree = [&](std::uint32_t mask) {
          for (int l = 0; l < kWarpSize; ++l) addrs[l] = node_offset.addr(lanes[l].subtree);
          device.warp_load(sm, addrs, mask, sizeof(std::uint32_t));
          for (int l = 0; l < kWarpSize; ++l) addrs[l] = subtree_depth.addr(lanes[l].subtree);
          device.warp_load(sm, addrs, mask, sizeof(std::uint8_t));
          for (int l = 0; l < kWarpSize; ++l) addrs[l] = conn_offset.addr(lanes[l].subtree);
          device.warp_load(sm, addrs, mask, sizeof(std::uint32_t));
          for (int l = 0; l < kWarpSize; ++l) {
            if (!(mask & (1u << l))) continue;
            Lane& ln = lanes[l];
            ln.pos = 0;
            ln.off = node_offset[ln.subtree];
            ln.bottom_first = static_cast<std::uint32_t>(pow2(subtree_depth[ln.subtree] - 1) - 1);
            ln.coff = conn_offset[ln.subtree];
          }
        };

        active = stage2_mask;
        if (active != 0) enter_subtree(active);
        while (active != 0) {
          for (int l = 0; l < kWarpSize; ++l) {
            addrs[l] = nodes.addr(lanes[l].off + lanes[l].pos);
          }
          device.warp_load(sm, addrs, active, sizeof(PackedNode));

          std::uint32_t leaf_mask = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if ((active & (1u << l)) &&
                packed[lanes[l].off + lanes[l].pos].feature == kLeafFeature) {
              leaf_mask |= 1u << l;
            }
          }
          device.warp_branch(leaf_mask, active);
          for (int l = 0; l < kWarpSize; ++l) {
            if (leaf_mask & (1u << l)) {
              ++votes[(first + static_cast<std::size_t>(l)) * k +
                      static_cast<std::uint8_t>(packed[lanes[l].off + lanes[l].pos].value)];
            }
          }
          active &= ~leaf_mask;
          if (active == 0) break;

          for (int l = 0; l < kWarpSize; ++l) {
            if (!(active & (1u << l))) continue;
            const auto f =
                static_cast<std::size_t>(packed[lanes[l].off + lanes[l].pos].feature);
            addrs[l] = q.addr(first + static_cast<std::size_t>(l), f);
          }
          device.warp_load(sm, addrs, active, sizeof(float));

          std::uint32_t hop_mask = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if (!(active & (1u << l))) continue;
            Lane& ln = lanes[l];
            const PackedNode& n = packed[ln.off + ln.pos];
            const bool go_left =
                q.value(first + static_cast<std::size_t>(l),
                        static_cast<std::size_t>(n.feature)) < n.value;
            if (ln.pos >= ln.bottom_first) {
              hop_mask |= 1u << l;
              const std::uint32_t ci =
                  ln.coff + 2 * (ln.pos - ln.bottom_first) + (go_left ? 0u : 1u);
              addrs[l] = connection.addr(ci);
              ln.subtree = static_cast<std::uint32_t>(connection[ci]);
            } else {
              ln.pos = 2 * ln.pos + (go_left ? 1u : 2u);
            }
          }
          device.add_instructions(1);  // left/right pick compiles to a predicated select
          device.warp_branch(hop_mask, active);
          if (hop_mask != 0) {
            device.warp_load(sm, addrs, hop_mask, sizeof(std::int32_t));
            enter_subtree(hop_mask);
          }
          device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
        }
      }
    }
  }

  KernelResult r;
  r.predictions = detail::finalize_votes(device, votes, q.count(), k);
  r.counters = device.counters();
  r.timing = device.estimate();
  return r;
}

}  // namespace hrf::gpukernels
