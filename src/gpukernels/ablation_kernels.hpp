#pragma once

// Negative-result kernels from the paper's §3.2.1 "Other optimizations
// tested" and §5. They exist so the benches can reproduce the paper's
// ablations; the production API (kernels.hpp) does not expose them.

#include "gpukernels/kernels.hpp"

namespace hrf::gpukernels {

/// §3.2.1 Optimization 2: "assigning each thread-block one tree to
/// traverse for all queries". Each block streams every query through its
/// single tree; per-query votes now live in global memory and every
/// (query, tree) result is accumulated with a global atomic
/// (read-modify-write), whose scattered traffic is what makes the paper
/// report a 2-10x slowdown relative to the independent variant.
KernelResult run_tree_per_block(gpusim::Device& device, const HierarchicalForest& forest,
                                const Dataset& queries);

/// §5 (Goldfarb et al. discussion): lockstep traversal benefits from
/// presorting similar queries into the same warps. Returns a permutation
/// ordering queries lexicographically by (binned) feature values; the
/// bench measures the traversal gain against the sort's own cost, which
/// the paper argues cannot be amortized for high-dimensional ML data.
std::vector<std::uint32_t> presort_queries(const Dataset& queries, int bins = 16);

/// Applies a permutation to a query set (helper for the presort ablation).
Dataset permute_queries(const Dataset& queries, std::span<const std::uint32_t> order);

}  // namespace hrf::gpukernels
