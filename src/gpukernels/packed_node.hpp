#pragma once

// Packed per-node attribute record used by the hierarchical GPU kernels.
//
// The paper stores a subtree node's attributes in 48 bits (§3.2: the
// collaborative capacity formula divides shared memory by 48 bits/node),
// i.e. feature id and value travel in ONE memory access. The CSR baseline
// keeps the separate feature_id / value / children arrays of Fig. 2 —
// that asymmetry (1 packed load vs 4 scattered loads per step) is a large
// part of the hierarchical layout's GPU win.

#include <cstdint>
#include <vector>

#include "layout/hierarchical.hpp"

namespace hrf::gpukernels {

struct PackedNode {
  std::int32_t feature;  // kLeafFeature marks a tree leaf (or padding)
  float value;           // threshold, or the leaf's class vote
};
static_assert(sizeof(PackedNode) == 8);

/// Interleaves the layout's attribute arrays into packed records (done
/// once at kernel setup, modeling the on-device layout).
inline std::vector<PackedNode> pack_nodes(const HierarchicalForest& forest) {
  const auto fid = forest.feature_id();
  const auto val = forest.value();
  std::vector<PackedNode> nodes(fid.size());
  for (std::size_t i = 0; i < fid.size(); ++i) nodes[i] = {fid[i], val[i]};
  return nodes;
}

}  // namespace hrf::gpukernels
