#include "gpukernels/common.hpp"
#include "gpukernels/kernels.hpp"

namespace hrf::gpukernels {

using detail::kWarpSize;

/// CSR baseline (paper §2.3, Fig. 2): each thread walks every tree for its
/// query. Per inner-node step the thread loads feature_id[n], value[n],
/// the query feature, children_arr_idx[n] and children_arr[idx + dir] —
/// two of which are the indirect topology accesses the hierarchical layout
/// eliminates. Warps reconverge at the end of each tree's while-loop, so a
/// warp pays the longest lane path per tree (lock-step divergence).
KernelResult run_csr(gpusim::Device& device, const CsrForest& csr, const Dataset& queries) {
  require(csr.num_features() == queries.num_features(), "query width != forest features");
  const detail::QueryView q(device, queries);
  const gpusim::DeviceArray<std::int32_t> feature_id(device, csr.feature_id());
  const gpusim::DeviceArray<float> value(device, csr.value());
  const gpusim::DeviceArray<std::int32_t> children_arr(device, csr.children_arr());
  const gpusim::DeviceArray<std::int32_t> children_arr_idx(device, csr.children_arr_idx());
  const gpusim::DeviceArray<std::int32_t> tree_root(device, csr.tree_root());

  const auto& cfg = device.config();
  const auto k = static_cast<std::size_t>(csr.num_classes());
  std::vector<std::uint32_t> votes(q.count() * k, 0);

  detail::for_each_warp(cfg, q.count(), [&](int sm, std::size_t first, std::uint32_t warp_mask) {
    std::uint32_t lane_node[kWarpSize] = {};
    std::uint64_t addrs[kWarpSize] = {};

    for (std::size_t t = 0; t < csr.num_trees(); ++t) {
      // Uniform per-warp read of the tree root (one lane broadcasts).
      addrs[0] = tree_root.addr(t);
      device.warp_load(sm, {addrs, 1}, 1u, sizeof(std::int32_t));
      const auto root = static_cast<std::uint32_t>(tree_root[t]);
      for (int l = 0; l < kWarpSize; ++l) lane_node[l] = root;

      std::uint32_t active = warp_mask;
      while (active != 0) {
        // feature_id[n] and value[n] for all active lanes.
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = feature_id.addr(lane_node[l]);
        device.warp_load(sm, addrs, active, sizeof(std::int32_t));
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = value.addr(lane_node[l]);
        device.warp_load(sm, addrs, active, sizeof(float));

        // Leaf check splits the warp when some lanes are done.
        std::uint32_t leaf_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if ((active & (1u << l)) && feature_id[lane_node[l]] == kLeafFeature) {
            leaf_mask |= 1u << l;
          }
        }
        device.warp_branch(leaf_mask, active);
        for (int l = 0; l < kWarpSize; ++l) {
          if (leaf_mask & (1u << l)) {
            ++votes[(first + static_cast<std::size_t>(l)) * k +
                    static_cast<std::uint8_t>(value[lane_node[l]])];
          }
        }
        active &= ~leaf_mask;
        if (active == 0) break;

        // Query feature for the comparison.
        for (int l = 0; l < kWarpSize; ++l) {
          if (active & (1u << l)) {
            addrs[l] = q.addr(first + static_cast<std::size_t>(l),
                              static_cast<std::size_t>(feature_id[lane_node[l]]));
          }
        }
        device.warp_load(sm, addrs, active, sizeof(float));

        // Indirect topology: children_arr_idx[n] then children_arr[idx+dir].
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = children_arr_idx.addr(lane_node[l]);
        device.warp_load(sm, addrs, active, sizeof(std::int32_t));

        std::uint32_t left_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          const std::uint32_t n = lane_node[l];
          const auto f = static_cast<std::size_t>(feature_id[n]);
          const bool go_left = q.value(first + static_cast<std::size_t>(l), f) < value[n];
          if (go_left) left_mask |= 1u << l;
          const auto idx = static_cast<std::size_t>(children_arr_idx[n]) + (go_left ? 0u : 1u);
          addrs[l] = children_arr.addr(idx);
          lane_node[l] = static_cast<std::uint32_t>(children_arr[idx]);
        }
        device.add_instructions(1);  // left/right pick compiles to a predicated select
        device.warp_load(sm, addrs, active, sizeof(std::int32_t));
        device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
      }
    }
  });

  KernelResult r;
  r.predictions = detail::finalize_votes(device, votes, q.count(), k);
  r.counters = device.counters();
  r.timing = device.estimate();
  return r;
}

}  // namespace hrf::gpukernels
