#include "gpukernels/ablation_kernels.hpp"

#include <algorithm>
#include <numeric>

#include "gpukernels/common.hpp"
#include "gpukernels/packed_node.hpp"
#include "util/math.hpp"

namespace hrf::gpukernels {

using detail::kWarpSize;

KernelResult run_tree_per_block(gpusim::Device& device, const HierarchicalForest& forest,
                                const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const detail::QueryView q(device, queries);
  const std::vector<PackedNode> packed = pack_nodes(forest);
  const gpusim::DeviceArray<PackedNode> nodes(device, packed);
  const gpusim::DeviceArray<std::uint32_t> node_offset(device, forest.subtree_node_offsets());
  const gpusim::DeviceArray<std::uint8_t> subtree_depth(device, forest.subtree_depths());
  const gpusim::DeviceArray<std::uint32_t> conn_offset(device, forest.connection_offsets());
  const gpusim::DeviceArray<std::int32_t> connection(device, forest.subtree_connection());

  const auto& cfg = device.config();
  const auto k = static_cast<std::size_t>(forest.num_classes());
  std::vector<std::uint32_t> votes(q.count() * k, 0);
  // Global vote matrix: with blocks partitioned by TREE, different blocks
  // update the same query's votes -> global atomics instead of registers.
  const gpusim::DeviceArray<std::uint32_t> votes_buf(device, votes);

  struct Lane {
    std::uint32_t subtree = 0;
    std::uint32_t pos = 0;
    std::uint32_t off = 0;
    std::uint32_t bottom_first = 0;
    std::uint32_t coff = 0;
  };

  // Grid: one block per tree; each block's warps sweep all queries.
  for (std::size_t t = 0; t < forest.num_trees(); ++t) {
    const int sm = static_cast<int>(t % static_cast<std::size_t>(cfg.num_sms));
    for (std::size_t first = 0; first < q.count(); first += kWarpSize) {
      std::uint32_t warp_mask = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (first + static_cast<std::size_t>(l) < q.count()) warp_mask |= 1u << l;
      }
      Lane lanes[kWarpSize];
      std::uint64_t addrs[kWarpSize] = {};

      const auto enter_subtree = [&](std::uint32_t mask) {
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = node_offset.addr(lanes[l].subtree);
        device.warp_load(sm, addrs, mask, sizeof(std::uint32_t));
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = subtree_depth.addr(lanes[l].subtree);
        device.warp_load(sm, addrs, mask, sizeof(std::uint8_t));
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = conn_offset.addr(lanes[l].subtree);
        device.warp_load(sm, addrs, mask, sizeof(std::uint32_t));
        for (int l = 0; l < kWarpSize; ++l) {
          if (!(mask & (1u << l))) continue;
          Lane& ln = lanes[l];
          ln.pos = 0;
          ln.off = node_offset[ln.subtree];
          ln.bottom_first = static_cast<std::uint32_t>(pow2(subtree_depth[ln.subtree] - 1) - 1);
          ln.coff = conn_offset[ln.subtree];
        }
      };

      for (int l = 0; l < kWarpSize; ++l) lanes[l].subtree = forest.root_subtree(t);
      enter_subtree(warp_mask);

      std::uint32_t active = warp_mask;
      while (active != 0) {
        for (int l = 0; l < kWarpSize; ++l) addrs[l] = nodes.addr(lanes[l].off + lanes[l].pos);
        device.warp_load(sm, addrs, active, sizeof(PackedNode));

        std::uint32_t leaf_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if ((active & (1u << l)) &&
              packed[lanes[l].off + lanes[l].pos].feature == kLeafFeature) {
            leaf_mask |= 1u << l;
          }
        }
        device.warp_branch(leaf_mask, active);
        if (leaf_mask != 0) {
          // atomicAdd on the global vote matrix: one scattered read +
          // write per finishing lane — Optimization 2's structural cost.
          for (int l = 0; l < kWarpSize; ++l) {
            if (!(leaf_mask & (1u << l))) continue;
            const std::size_t qi = first + static_cast<std::size_t>(l);
            const auto cls =
                static_cast<std::uint8_t>(packed[lanes[l].off + lanes[l].pos].value);
            ++votes[qi * k + cls];
            addrs[l] = votes_buf.addr(qi * k + cls);
          }
          device.warp_atomic_rmw(sm, addrs, leaf_mask, sizeof(std::uint32_t));
        }
        active &= ~leaf_mask;
        if (active == 0) break;

        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          const auto f = static_cast<std::size_t>(packed[lanes[l].off + lanes[l].pos].feature);
          addrs[l] = q.addr(first + static_cast<std::size_t>(l), f);
        }
        device.warp_load(sm, addrs, active, sizeof(float));

        std::uint32_t hop_mask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if (!(active & (1u << l))) continue;
          Lane& ln = lanes[l];
          const PackedNode& n = packed[ln.off + ln.pos];
          const bool go_left = q.value(first + static_cast<std::size_t>(l),
                                       static_cast<std::size_t>(n.feature)) < n.value;
          if (ln.pos >= ln.bottom_first) {
            hop_mask |= 1u << l;
            const std::uint32_t ci = ln.coff + 2 * (ln.pos - ln.bottom_first) + (go_left ? 0u : 1u);
            addrs[l] = connection.addr(ci);
            ln.subtree = static_cast<std::uint32_t>(connection[ci]);
          } else {
            ln.pos = 2 * ln.pos + (go_left ? 1u : 2u);
          }
        }
        device.add_instructions(1);
        device.warp_branch(hop_mask, active);
        if (hop_mask != 0) {
          device.warp_load(sm, addrs, hop_mask, sizeof(std::int32_t));
          enter_subtree(hop_mask);
        }
        device.add_instructions(static_cast<std::uint64_t>(cfg.instructions_per_step));
      }
    }
  }

  KernelResult r;
  r.predictions = detail::finalize_votes(device, votes, q.count(), k);
  r.counters = device.counters();
  r.timing = device.estimate();
  return r;
}

std::vector<std::uint32_t> presort_queries(const Dataset& queries, int bins) {
  require(bins >= 2 && bins <= 256, "presort bins must be in [2, 256]");
  const std::size_t nq = queries.num_samples();
  const std::size_t nf = queries.num_features();

  // Per-feature min/max for uniform binning (one pass).
  std::vector<float> lo(nf, 0.f), hi(nf, 0.f);
  for (std::size_t f = 0; f < nf; ++f) {
    lo[f] = hi[f] = queries.sample(0)[f];
  }
  for (std::size_t i = 1; i < nq; ++i) {
    const auto row = queries.sample(i);
    for (std::size_t f = 0; f < nf; ++f) {
      lo[f] = std::min(lo[f], row[f]);
      hi[f] = std::max(hi[f], row[f]);
    }
  }

  const auto code = [&](std::size_t i, std::size_t f) {
    const float range = hi[f] - lo[f];
    if (range <= 0.f) return 0;
    const auto c = static_cast<int>((queries.sample(i)[f] - lo[f]) / range * bins);
    return std::min(c, bins - 1);
  };

  std::vector<std::uint32_t> order(nq);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    for (std::size_t f = 0; f < nf; ++f) {
      const int ca = code(a, f);
      const int cb = code(b, f);
      if (ca != cb) return ca < cb;
    }
    return a < b;
  });
  return order;
}

Dataset permute_queries(const Dataset& queries, std::span<const std::uint32_t> order) {
  require(order.size() == queries.num_samples(), "permutation size != query count");
  Dataset out(queries.num_samples(), queries.num_features(), queries.num_classes());
  out.set_name(queries.name() + "/sorted");
  for (std::uint32_t i : order) out.push_back(queries.sample(i), queries.label(i));
  return out;
}

}  // namespace hrf::gpukernels
