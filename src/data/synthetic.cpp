#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {

namespace {

/// Recursive teacher construction. Each node owns an axis-aligned box
/// (per-feature [lo, hi) intervals over the relevant features) and its
/// probability mass (box volume over relevant features, since those are
/// uniform on [0,1)). Thresholds are drawn inside the current box so every
/// branch is reachable by data; "peeling" cuts near a box edge create thin
/// deep chains whose small-but-learnable mass produces the paper's gradual
/// accuracy gains at large learner depths.
struct TeacherBuilder {
  const SyntheticSpec& spec;
  Xoshiro256& rng;
  std::vector<int> relevant;  // feature ids the teacher may split on
  std::vector<TeacherTree::Node> nodes;
  int max_depth_seen = 0;

  std::uint8_t leaf_label(double bias) {
    const int k = spec.num_classes;
    if (k == 2) {  // the paper's binary setting: label = sign of the walk
      if (bias > 0.0) return 1;
      if (bias < 0.0) return 0;
      return static_cast<std::uint8_t>(rng.bernoulli(0.5) ? 1 : 0);
    }
    // Multi-class: fold the walk onto k buckets (kept spatially correlated
    // so greedy CART can still follow the signal).
    const auto bucket = static_cast<long>(std::floor(bias / 2.0));
    return static_cast<std::uint8_t>(((bucket % k) + k) % k);
  }

  // Boxes are passed by value intentionally: each child mutates one bound.
  // `bias` is a ±1 random walk along the path from the root; a leaf's label
  // is its sign. This layers label signal at *every* depth (large top-level
  // structure, diminishing deep refinements), which greedy CART can follow
  // — unlike independent random leaf labels, whose marginal split gain is
  // zero at the root.
  std::int32_t build(int depth, double mass, double bias, std::vector<float> lo,
                     std::vector<float> hi) {
    max_depth_seen = std::max(max_depth_seen, depth);
    const auto id = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();

    const bool can_split = depth < spec.teacher_depth && mass > spec.mass_floor;
    if (!can_split || (depth > 2 && rng.bernoulli(spec.early_leaf_prob))) {
      nodes[id].leaf_label = leaf_label(bias);
      return id;
    }

    // Pick a relevant feature whose interval is still wide enough to cut.
    int feature = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int f = relevant[rng.bounded(relevant.size())];
      const auto r = static_cast<std::size_t>(f);
      if (hi[r] - lo[r] > 1e-4f) {
        feature = f;
        break;
      }
    }
    if (feature < 0) {  // box exhausted: forced leaf
      nodes[id].leaf_label = leaf_label(bias);
      return id;
    }
    const auto r = static_cast<std::size_t>(feature);

    // Split fraction: balanced cut or an edge peel (either side).
    double frac;
    if (rng.bernoulli(spec.peel_prob)) {
      frac = rng.uniform(0.12, 0.25);
      if (rng.bernoulli(0.5)) frac = 1.0 - frac;
    } else {
      frac = rng.uniform(0.30, 0.70);
    }
    const float t = lo[r] + (hi[r] - lo[r]) * static_cast<float>(frac);
    nodes[id].feature = feature;
    nodes[id].threshold = t;

    auto lo_right = lo;
    auto hi_left = hi;
    hi_left[r] = t;
    lo_right[r] = t;
    const double step = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const std::int32_t l =
        build(depth + 1, mass * frac, bias + step, std::move(lo), std::move(hi_left));
    const std::int32_t rr =
        build(depth + 1, mass * (1.0 - frac), bias - step, std::move(lo_right), std::move(hi));
    nodes[id].left = l;
    nodes[id].right = rr;
    return id;
  }
};

}  // namespace

TeacherTree TeacherTree::build(const SyntheticSpec& spec) {
  require(spec.num_features >= 1, "synthetic spec needs >=1 feature");
  require(spec.num_relevant >= 1 && spec.num_relevant <= spec.num_features,
          "num_relevant must be in [1, num_features]");
  require(spec.teacher_depth >= 1 && spec.teacher_depth <= 48,
          "teacher_depth must be in [1, 48]");
  require(spec.label_noise >= 0.0 && spec.label_noise < 0.5,
          "label_noise must be in [0, 0.5)");
  require(spec.num_classes >= 2 && spec.num_classes <= 256,
          "num_classes must be in [2, 256]");

  Xoshiro256 rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xabcdef);
  TeacherBuilder b{spec, rng, {}, {}, 0};
  b.relevant.resize(static_cast<std::size_t>(spec.num_relevant));
  std::iota(b.relevant.begin(), b.relevant.end(), 0);

  std::vector<float> lo(static_cast<std::size_t>(spec.num_features), 0.0f);
  std::vector<float> hi(static_cast<std::size_t>(spec.num_features), 1.0f);
  b.build(1, 1.0, 0.0, std::move(lo), std::move(hi));

  TeacherTree t;
  t.nodes_ = std::move(b.nodes);
  t.depth_ = b.max_depth_seen;
  return t;
}

std::uint8_t TeacherTree::classify(std::span<const float> x) const {
  std::int32_t n = 0;
  while (nodes_[static_cast<std::size_t>(n)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    n = x[static_cast<std::size_t>(node.feature)] < node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<std::size_t>(n)].leaf_label;
}

Dataset make_synthetic(const SyntheticSpec& spec) {
  require(spec.num_samples >= 2, "need at least 2 samples");
  const TeacherTree teacher = TeacherTree::build(spec);

  Dataset ds(spec.num_samples, static_cast<std::size_t>(spec.num_features), spec.num_classes);
  ds.set_name(spec.name);
  std::vector<float> row(static_cast<std::size_t>(spec.num_features));

  Xoshiro256 rng(spec.seed);
  for (std::size_t i = 0; i < spec.num_samples; ++i) {
    for (int f = 0; f < spec.num_features; ++f) {
      // Relevant features live in the teacher's [0,1) box; the rest are
      // Gaussian distractors the trainer must learn to ignore.
      row[static_cast<std::size_t>(f)] =
          f < spec.num_relevant ? rng.uniform_float()
                                : static_cast<float>(rng.normal(0.0, 1.0));
    }
    std::uint8_t label = teacher.classify(row);
    // The flip draw is consumed even at noise 0 so that datasets generated
    // from the same seed differ only in the flipped labels.
    if (rng.bernoulli(spec.label_noise)) {
      if (spec.num_classes == 2) {
        label ^= 1u;
      } else {
        const auto shift = 1 + rng.bounded(static_cast<std::uint64_t>(spec.num_classes - 1));
        label = static_cast<std::uint8_t>((label + shift) % spec.num_classes);
      }
    }
    ds.push_back(row, label);
  }
  return ds;
}

SyntheticSpec covertype_like_spec(std::size_t num_samples, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "covertype-like";
  s.num_samples = num_samples;
  s.num_features = 54;   // Table 1: Covertype has 54 features
  s.num_relevant = 12;
  s.teacher_depth = 32;  // accuracy keeps improving until depth ~35 (Fig. 5)
  s.mass_floor = 2e-3;
  s.peel_prob = 0.60;
  s.label_noise = 0.05;  // plateau ≈ 89%
  s.seed = seed;
  return s;
}

SyntheticSpec susy_like_spec(std::size_t num_samples, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "susy-like";
  s.num_samples = num_samples;
  s.num_features = 18;   // Table 1: SUSY has 18 features
  s.num_relevant = 14;
  s.teacher_depth = 16;  // plateau reached by depth ~15-20 (Fig. 5)
  s.mass_floor = 1.5e-2;
  s.peel_prob = 0.45;
  s.label_noise = 0.18;  // plateau ≈ 80%
  s.seed = seed;
  return s;
}

SyntheticSpec higgs_like_spec(std::size_t num_samples, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "higgs-like";
  s.num_samples = num_samples;
  s.num_features = 28;   // Table 1: HIGGS has 28 features
  s.num_relevant = 16;
  s.teacher_depth = 24;  // plateau reached by depth ~25-30 (Fig. 5)
  s.mass_floor = 6e-3;
  s.peel_prob = 0.50;
  s.label_noise = 0.20;  // plateau ≈ 74%
  s.seed = seed;
  return s;
}

Dataset make_covertype_like(std::size_t num_samples, std::uint64_t seed) {
  return make_synthetic(covertype_like_spec(num_samples, seed));
}
Dataset make_susy_like(std::size_t num_samples, std::uint64_t seed) {
  return make_synthetic(susy_like_spec(num_samples, seed));
}
Dataset make_higgs_like(std::size_t num_samples, std::uint64_t seed) {
  return make_synthetic(higgs_like_spec(num_samples, seed));
}

Dataset make_random_queries(std::size_t num_queries, int num_features, std::uint64_t seed) {
  require(num_queries >= 1, "need at least one query");
  require(num_features >= 1, "need at least one feature");
  Dataset ds(num_queries, static_cast<std::size_t>(num_features));
  ds.set_name("random-queries");
  Xoshiro256 rng(seed);
  std::vector<float> row(static_cast<std::size_t>(num_features));
  for (std::size_t i = 0; i < num_queries; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, 0);
  }
  return ds;
}

}  // namespace hrf
