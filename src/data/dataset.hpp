#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hrf {

/// A classification dataset held in row-major order.
///
/// The paper's setting is binary (class A = 0, B = 1), millions of
/// samples, tens of single-precision features; the library additionally
/// supports multi-class labels (e.g. the original 7-class Covertype the
/// paper binarized). Feature vectors double as inference *queries*: the
/// evaluation classifies the test half of each dataset against a trained
/// forest.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with capacity for `num_samples` rows and
  /// labels in [0, num_classes).
  Dataset(std::size_t num_samples, std::size_t num_features, int num_classes = 2);

  std::size_t num_samples() const { return labels_.size(); }
  std::size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  /// Feature vector of sample `i` (length num_features()).
  std::span<const float> sample(std::size_t i) const {
    return {features_.data() + i * num_features_, num_features_};
  }
  std::span<float> sample(std::size_t i) {
    return {features_.data() + i * num_features_, num_features_};
  }

  std::uint8_t label(std::size_t i) const { return labels_[i]; }
  void set_label(std::size_t i, std::uint8_t v) { labels_[i] = v; }

  /// Raw row-major feature matrix (num_samples x num_features).
  std::span<const float> features() const { return features_; }
  std::span<const std::uint8_t> labels() const { return labels_; }

  /// Appends one sample; `row` must have num_features() entries.
  void push_back(std::span<const float> row, std::uint8_t label);

  /// Name used in reports ("covertype-like", ...).
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Fraction of samples labelled class 1 (binary datasets).
  double positive_fraction() const;

  /// Per-class sample counts (size num_classes()).
  std::vector<std::size_t> class_histogram() const;

  /// Splits into (train, test) halves: the first `train_fraction` of samples
  /// train, the rest test — the paper slices 1:1. Order is preserved
  /// (generators already shuffle).
  std::pair<Dataset, Dataset> split(double train_fraction = 0.5) const;

  /// Binary (de)serialization for caching generated datasets across bench
  /// runs. Format: magic, version, dims, raw arrays. Throws FormatError on
  /// malformed input.
  void save(const std::string& path) const;
  static Dataset load(const std::string& path);

 private:
  std::size_t num_features_ = 0;
  int num_classes_ = 2;
  std::vector<float> features_;
  std::vector<std::uint8_t> labels_;
  std::string name_ = "unnamed";
};

}  // namespace hrf
