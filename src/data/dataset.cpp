#include "data/dataset.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace hrf {

namespace {
constexpr std::uint32_t kMagic = 0x48524644;  // "HRFD"
constexpr std::uint32_t kVersion = 2;  // v2 added num_classes

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw FormatError("dataset file truncated");
  return v;
}
}  // namespace

Dataset::Dataset(std::size_t num_samples, std::size_t num_features, int num_classes)
    : num_features_(num_features), num_classes_(num_classes) {
  require(num_features > 0, "dataset needs at least one feature");
  require(num_classes >= 2 && num_classes <= 256, "num_classes must be in [2, 256]");
  features_.reserve(num_samples * num_features);
  labels_.reserve(num_samples);
}

void Dataset::push_back(std::span<const float> row, std::uint8_t label) {
  require(row.size() == num_features_, "row width != num_features");
  require(label < num_classes_, "label out of range for num_classes");
  features_.insert(features_.end(), row.begin(), row.end());
  labels_.push_back(label);
}

double Dataset::positive_fraction() const {
  if (labels_.empty()) return 0.0;
  std::size_t pos = 0;
  for (auto l : labels_) pos += l == 1;
  return static_cast<double>(pos) / static_cast<double>(labels_.size());
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes_), 0);
  for (auto l : labels_) ++hist[l];
  return hist;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  require(train_fraction > 0.0 && train_fraction < 1.0, "train_fraction must be in (0,1)");
  const auto n_train = static_cast<std::size_t>(train_fraction * static_cast<double>(num_samples()));
  Dataset train(n_train, num_features_, num_classes_);
  Dataset test(num_samples() - n_train, num_features_, num_classes_);
  train.set_name(name_ + "/train");
  test.set_name(name_ + "/test");
  for (std::size_t i = 0; i < num_samples(); ++i) {
    (i < n_train ? train : test).push_back(sample(i), label(i));
  }
  return {std::move(train), std::move(test)};
}

void Dataset::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for writing: " + path);
  write_pod(f, kMagic);
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint64_t>(num_samples()));
  write_pod(f, static_cast<std::uint64_t>(num_features_));
  write_pod(f, static_cast<std::uint32_t>(num_classes_));
  write_pod(f, static_cast<std::uint64_t>(name_.size()));
  f.write(name_.data(), static_cast<std::streamsize>(name_.size()));
  f.write(reinterpret_cast<const char*>(features_.data()),
          static_cast<std::streamsize>(features_.size() * sizeof(float)));
  f.write(reinterpret_cast<const char*>(labels_.data()),
          static_cast<std::streamsize>(labels_.size()));
  if (!f) throw Error("write failed: " + path);
}

Dataset Dataset::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  if (read_pod<std::uint32_t>(f) != kMagic) throw FormatError("bad dataset magic in " + path);
  if (read_pod<std::uint32_t>(f) != kVersion) throw FormatError("unsupported dataset version in " + path);
  const auto n = read_pod<std::uint64_t>(f);
  const auto d = read_pod<std::uint64_t>(f);
  if (d == 0 || d > 1u << 20) throw FormatError("implausible feature count in " + path);
  const auto k = read_pod<std::uint32_t>(f);
  if (k < 2 || k > 256) throw FormatError("implausible class count in " + path);
  const auto name_len = read_pod<std::uint64_t>(f);
  if (name_len > 4096) throw FormatError("implausible name length in " + path);
  std::string name(name_len, '\0');
  f.read(name.data(), static_cast<std::streamsize>(name_len));
  Dataset ds(n, d, static_cast<int>(k));
  ds.set_name(name);
  ds.features_.resize(n * d);
  ds.labels_.resize(n);
  f.read(reinterpret_cast<char*>(ds.features_.data()),
         static_cast<std::streamsize>(ds.features_.size() * sizeof(float)));
  f.read(reinterpret_cast<char*>(ds.labels_.data()), static_cast<std::streamsize>(n));
  if (!f) throw FormatError("dataset file truncated: " + path);
  for (auto l : ds.labels_) {
    if (l >= k) throw FormatError("label out of class range in " + path);
  }
  return ds;
}

}  // namespace hrf
