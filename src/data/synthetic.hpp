#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hrf {

/// Parameters of the synthetic dataset family.
///
/// The paper evaluates on UCI Covertype / SUSY / HIGGS. This host has no
/// network access, so we substitute generators that reproduce what the
/// evaluation actually depends on (see DESIGN.md §2):
///   * dimensionality (54 / 18 / 28 features) and binary labels;
///   * a ground truth that *requires deep trees*: labels come from a random
///     deep "teacher" decision tree over the feature space, so a learner's
///     accuracy keeps improving with max tree depth until it matches the
///     teacher's depth — the same saturating curves as the paper's Fig. 5;
///   * an accuracy ceiling (Bayes error) set by `label_noise`, tuned per
///     dataset to the paper's plateaus (≈89% / ≈80% / ≈74%).
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_samples = 100'000;
  int num_features = 20;
  /// How many features the teacher tree actually splits on. The remaining
  /// features are pure noise, exercising the trainer's feature subsampling.
  int num_relevant = 16;
  /// Depth cap of the ground-truth teacher tree (root has depth 1).
  int teacher_depth = 20;
  /// A teacher node keeps splitting while its probability mass exceeds this
  /// floor (and depth < teacher_depth). Unbalanced "peeling" cuts let thin
  /// chains reach the depth cap while keeping every region learnable from a
  /// modest sample count — this is what makes accuracy keep improving with
  /// learner depth up to the cap, as in the paper's Fig. 5.
  double mass_floor = 5e-3;
  /// Probability that a cut is a peel (split fraction near an edge, 8-20%)
  /// rather than balanced (30-70%). Higher = deeper, thinner structure.
  double peel_prob = 0.5;
  /// Small chance an expandable node becomes a leaf anyway (irregularity).
  double early_leaf_prob = 0.03;
  /// Label-flip probability = accuracy ceiling is (1 - label_noise).
  /// Multi-class flips re-draw uniformly among the other classes.
  double label_noise = 0.15;
  /// Number of classes; 2 reproduces the paper's binary setting. With
  /// k > 2 teacher leaves map the label random walk onto k buckets.
  int num_classes = 2;
  std::uint64_t seed = 1;
};

/// A random ground-truth decision tree used to label synthetic samples.
/// Exposed so tests can verify reachability / structural invariants.
class TeacherTree {
 public:
  struct Node {
    int feature = -1;        // -1 marks a leaf
    float threshold = 0.0f;  // inner: go left iff x[feature] < threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint8_t leaf_label = 0;
  };

  /// Builds a random teacher per the spec (uses only spec.num_relevant
  /// features, depth capped at spec.teacher_depth, regions no lighter than
  /// spec.mass_floor).
  static TeacherTree build(const SyntheticSpec& spec);

  std::uint8_t classify(std::span<const float> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  std::vector<Node> nodes_;
  int depth_ = 0;
};

/// Generates a dataset per the spec. Feature values for relevant features
/// are uniform in [0,1); irrelevant features are standard normal noise.
/// Deterministic in spec.seed.
Dataset make_synthetic(const SyntheticSpec& spec);

/// Specs mirroring the paper's three UCI datasets (Table 1), with a
/// caller-chosen sample count (the paper uses 581k / 3M / 2.75M; benches
/// default to a scaled-down count so the whole harness runs on small hosts).
SyntheticSpec covertype_like_spec(std::size_t num_samples, std::uint64_t seed = 7);
SyntheticSpec susy_like_spec(std::size_t num_samples, std::uint64_t seed = 8);
SyntheticSpec higgs_like_spec(std::size_t num_samples, std::uint64_t seed = 9);

Dataset make_covertype_like(std::size_t num_samples, std::uint64_t seed = 7);
Dataset make_susy_like(std::size_t num_samples, std::uint64_t seed = 8);
Dataset make_higgs_like(std::size_t num_samples, std::uint64_t seed = 9);

/// Structureless queries (uniform features, labels all zero) for timing
/// runs against synthetic random forests (Table 3's q=250k workload).
Dataset make_random_queries(std::size_t num_queries, int num_features,
                            std::uint64_t seed = 11);

}  // namespace hrf
