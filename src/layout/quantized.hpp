#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "layout/hierarchical.hpp"

namespace hrf {

/// Fixed-point (16-bit) variant of the hierarchical layout.
///
/// The paper's related work (§5, Nakahara et al.) accelerates RF inference
/// by "utilizing fixed point bits instead of floating point bits". This
/// encoding quantizes every threshold to a per-feature affine uint16 grid
/// and packs a node into 4 bytes (int16 feature + uint16 threshold code),
/// halving the node-array footprint relative to the 8-byte float layout
/// and replacing float comparators with integer ones (cheaper on FPGA).
///
/// Quantization is monotone per feature, so a traversal can only diverge
/// from the float layout when a query lands inside the same 1/65535-wide
/// grid cell as a threshold; agreement() measures the effect.
class QuantizedHierarchicalForest {
 public:
  struct Node {
    std::int16_t feature;       // kLeafFeature16 marks a leaf
    std::uint16_t threshold_q;  // quantized threshold; class id for leaves
  };
  static constexpr std::int16_t kLeafFeature16 = -1;

  /// Quantizes `forest` using per-feature ranges estimated from
  /// `calibration` rows (plus the thresholds themselves, so every split
  /// stays in range). Requires num_features <= 32767.
  static QuantizedHierarchicalForest build(const HierarchicalForest& forest,
                                           const Dataset& calibration);

  std::size_t num_features() const { return feature_lo_.size(); }
  int num_classes() const { return num_classes_; }
  std::size_t num_subtrees() const { return base_depth_.size(); }

  /// Quantizes one query into codes (exposed for tests and batching).
  void quantize_query(std::span<const float> query, std::span<std::uint16_t> out) const;

  /// Majority-vote classification on the quantized encoding.
  std::uint8_t classify(std::span<const float> query) const;

  /// Bytes of the node array (4 per stored node; compare with the float
  /// layout's 8 per node).
  std::size_t node_bytes() const { return nodes_.size() * sizeof(Node); }

  /// Fraction of queries classified identically to the float layout.
  double agreement(const HierarchicalForest& reference, const Dataset& queries) const;

 private:
  float threshold_value(std::size_t f, std::uint16_t code) const;

  int num_classes_ = 2;
  std::vector<Node> nodes_;
  std::vector<float> feature_lo_;     // per-feature affine map: code =
  std::vector<float> feature_scale_;  // (x - lo) * scale, clamped to u16
  // Topology tables shared with the float layout's structure.
  std::vector<std::uint32_t> subtree_node_offset_;
  std::vector<std::uint8_t> base_depth_;
  std::vector<std::uint32_t> connection_offset_;
  std::vector<std::int32_t> subtree_connection_;
  std::vector<std::uint32_t> tree_subtree_begin_;
};

}  // namespace hrf
