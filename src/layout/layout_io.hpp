#pragma once

// (De)serialization of the compiled inference layouts. A deployment can
// ship the hierarchical encoding directly (model compilation — subtree
// decomposition, padding, connection wiring — happens offline once), the
// way cuML ships FIL blobs. Formats are versioned and validated on load.

#include <string>

#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf {

/// Writes the CSR encoding to `path`. Throws hrf::Error on I/O failure.
void save_csr(const CsrForest& csr, const std::string& path);

/// Loads a CSR encoding; validates array cross-references.
/// Throws FormatError on malformed input.
CsrForest load_csr(const std::string& path);

/// Writes the hierarchical encoding (including its SD/RSD config).
void save_hierarchical(const HierarchicalForest& forest, const std::string& path);

/// Loads a hierarchical encoding and runs HierarchicalForest::validate().
HierarchicalForest load_hierarchical(const std::string& path);

}  // namespace hrf
