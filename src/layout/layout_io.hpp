#pragma once

// (De)serialization of the compiled inference layouts. A deployment can
// ship the hierarchical encoding directly (model compilation — subtree
// decomposition, padding, connection wiring — happens offline once), the
// way cuML ships FIL blobs. Formats are versioned and validated on load.
//
// Blob format v2 (the default) frames every section — one scalar header
// plus one per array — as {u64 byte length, u32 CRC-32, payload}, so any
// corruption in transit or at rest is detected deterministically and load
// throws FormatError instead of propagating a garbled forest; the error
// carries the failing section name and byte offset (FormatError::section
// / byte_offset) so corrupted-artifact logs are actionable. v1 blobs
// (unframed, no checksums) still load via the version field.
//
// Saves are crash-safe: blobs are staged through util/atomic_file (temp
// file in the target directory + fsync + atomic rename), so a crash
// mid-save never leaves a truncated blob where a valid one stood.
// docs/robustness.md documents the full layout and failure model.

#include <string>

#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf {

/// Current blob format version written by default.
inline constexpr std::uint32_t kLayoutFormatVersion = 2;

/// Writes the CSR encoding to `path`. `version` selects the blob format
/// (2 = checksummed sections, 1 = legacy unframed; anything else throws
/// ConfigError). Throws hrf::Error on I/O failure.
void save_csr(const CsrForest& csr, const std::string& path,
              std::uint32_t version = kLayoutFormatVersion);

/// Loads a CSR encoding; verifies section checksums (v2) and validates
/// array cross-references. Throws FormatError on malformed input.
CsrForest load_csr(const std::string& path);

/// Writes the hierarchical encoding (including its SD/RSD config).
void save_hierarchical(const HierarchicalForest& forest, const std::string& path,
                       std::uint32_t version = kLayoutFormatVersion);

/// Loads a hierarchical encoding and runs HierarchicalForest::validate().
HierarchicalForest load_hierarchical(const std::string& path);

/// Peeks the magic of a layout blob: returns "csr", "hierarchical", or
/// throws FormatError when `path` is not a layout blob.
std::string peek_layout_kind(const std::string& path);

}  // namespace hrf
