#include "layout/layout_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf {

namespace {

constexpr std::uint32_t kCsrMagic = 0x48524643;   // "HRFC"
constexpr std::uint32_t kHierMagic = 0x48524648;  // "HRFH"
constexpr std::uint64_t kMaxArrayElems = 1ull << 32;

// ---------------------------------------------------------------------------
// Writing. v2 frames each section as {u64 size, u32 crc, payload} so the
// loader can verify integrity before interpreting a single payload byte;
// v1 writes the same payloads unframed (kept for old blobs and tests).
// All saves are crash-safe: the blob is staged through AtomicFile, so a
// crash mid-save leaves the previous version of the file intact instead
// of a truncated blob (docs/model-lifecycle.md).

class SectionWriter {
 public:
  SectionWriter(std::ostream& os, std::uint32_t version) : os_(os), version_(version) {}

  template <typename T>
  SectionWriter& pod(const T& v) {
    buf_.insert(buf_.end(), reinterpret_cast<const std::byte*>(&v),
                reinterpret_cast<const std::byte*>(&v) + sizeof v);
    return *this;
  }

  template <typename T>
  SectionWriter& array(std::span<const T> xs) {
    pod(static_cast<std::uint64_t>(xs.size()));
    if (!xs.empty()) {
      const auto* p = reinterpret_cast<const std::byte*>(xs.data());
      buf_.insert(buf_.end(), p, p + xs.size_bytes());
    }
    return *this;
  }

  /// Flushes the buffered payload as one section.
  void commit() {
    if (version_ >= 2) {
      const auto size = static_cast<std::uint64_t>(buf_.size());
      const std::uint32_t crc = crc32(buf_);
      os_.write(reinterpret_cast<const char*>(&size), sizeof size);
      os_.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    }
    if (!buf_.empty()) {
      os_.write(reinterpret_cast<const char*>(buf_.data()),
                static_cast<std::streamsize>(buf_.size()));
    }
    buf_.clear();
  }

 private:
  std::ostream& os_;
  std::uint32_t version_;
  std::vector<std::byte> buf_;
};

// ---------------------------------------------------------------------------
// Reading. The whole blob is pulled into memory first: truncation becomes a
// bounds check, checksums can run before parsing, and the fault injector
// can corrupt the bytes exactly the way rotted storage would. Every reader
// carries the section name and the absolute byte offset of its window, so
// a FormatError pinpoints where in the file the failure was detected.

class ByteReader {
 public:
  ByteReader(std::span<const std::byte> data, const std::string& path,
             std::string section = "preamble", std::uint64_t base_offset = 0)
      : data_(data), path_(path), section_(std::move(section)), base_(base_offset) {}

  template <typename T>
  T pod() {
    T v{};
    std::memcpy(&v, take(sizeof v).data(), sizeof v);
    return v;
  }

  template <typename T>
  std::vector<T> array(std::uint64_t max_elems = kMaxArrayElems) {
    const std::uint64_t at = offset();
    const auto n = pod<std::uint64_t>();
    if (n > max_elems) {
      throw FormatError("layout array implausibly large in " + path_, section_, at);
    }
    const std::span<const std::byte> raw = take(n * sizeof(T));
    std::vector<T> xs(n);
    if (n != 0) std::memcpy(xs.data(), raw.data(), raw.size());
    return xs;
  }

  /// Verifies and opens the next v2 section; `name` labels the returned
  /// reader so downstream errors carry the section and byte offset.
  ByteReader section(const char* name) {
    const std::uint64_t frame_at = offset();
    const auto size = pod<std::uint64_t>();
    const auto crc = pod<std::uint32_t>();
    const std::uint64_t payload_at = offset();
    const std::span<const std::byte> payload = take(size, name, frame_at);
    if (crc32(payload) != crc) {
      throw FormatError("layout checksum mismatch in section '" + std::string(name) + "' of " +
                            path_ + " (blob corrupted?)",
                        name, payload_at);
    }
    return ByteReader(payload, path_, name, payload_at);
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Absolute byte offset of the read cursor within the file.
  std::uint64_t offset() const { return base_ + pos_; }
  const std::string& section_name() const { return section_; }

 private:
  std::span<const std::byte> take(std::uint64_t n) { return take(n, section_, offset()); }

  std::span<const std::byte> take(std::uint64_t n, const std::string& section,
                                  std::uint64_t at) {
    if (n > data_.size() - pos_) {
      throw FormatError("layout file truncated: " + path_, section, at);
    }
    const std::span<const std::byte> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  const std::string& path_;
  std::string section_;
  std::uint64_t base_ = 0;
};

std::vector<std::byte> read_blob(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw Error("cannot open for reading: " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!f) throw Error("read failed: " + path);
  // Fault injection: model bit rot / torn writes between save and load.
  FaultInjector& inj = FaultInjector::global();
  if (inj.enabled() && inj.consume("bitflip:layout")) inj.flip_random_bits(bytes, 1);
  return bytes;
}

void write_preamble(std::ostream& os, std::uint32_t magic, std::uint32_t version) {
  require(version == 1 || version == 2, "unsupported layout format version requested");
  os.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  os.write(reinterpret_cast<const char*>(&version), sizeof version);
}

std::uint32_t read_preamble(ByteReader& r, std::uint32_t magic, const char* kind,
                            const std::string& path) {
  if (r.pod<std::uint32_t>() != magic) {
    throw FormatError("bad " + std::string(kind) + " magic in " + path, "preamble", 0);
  }
  const std::uint64_t at = r.offset();
  const auto version = r.pod<std::uint32_t>();
  if (version < 1 || version > 2) {
    throw FormatError("unsupported " + std::string(kind) + " version in " + path, "preamble",
                      at);
  }
  return version;
}

/// Post-parse fault injection: clobber a node field the way an in-memory
/// corruption would, *after* checksums passed — from_parts/validate() must
/// still catch it semantically.
void maybe_corrupt_node(std::vector<std::int32_t>& feature_id) {
  FaultInjector& inj = FaultInjector::global();
  if (inj.enabled() && inj.consume("corrupt:node") && !feature_id.empty()) {
    feature_id[feature_id.size() / 2] = 0x7f7f7f7f;
  }
}

}  // namespace

void save_csr(const CsrForest& csr, const std::string& path, std::uint32_t version) {
  AtomicFile out(path);
  std::ostream& f = out.stream();
  write_preamble(f, kCsrMagic, version);
  SectionWriter w(f, version);
  w.pod(static_cast<std::uint64_t>(csr.num_features()))
      .pod(static_cast<std::uint32_t>(csr.num_classes()));
  w.commit();
  w.array(csr.feature_id()).commit();
  w.array(csr.value()).commit();
  w.array(csr.children_arr()).commit();
  w.array(csr.children_arr_idx()).commit();
  w.array(csr.tree_root()).commit();
  if (!f) throw Error("write failed: " + path);
  out.commit();
}

CsrForest load_csr(const std::string& path) {
  const std::vector<std::byte> blob = read_blob(path);
  ByteReader r(blob, path);
  const std::uint32_t version = read_preamble(r, kCsrMagic, "CSR", path);

  std::uint64_t num_features = 0;
  std::uint32_t num_classes = 0;
  std::vector<std::int32_t> feature_id;
  std::vector<float> value;
  std::vector<std::int32_t> children, children_idx, roots;
  if (version == 1) {
    num_features = r.pod<std::uint64_t>();
    num_classes = r.pod<std::uint32_t>();
    feature_id = r.array<std::int32_t>();
    value = r.array<float>();
    children = r.array<std::int32_t>();
    children_idx = r.array<std::int32_t>();
    roots = r.array<std::int32_t>();
  } else {
    ByteReader header = r.section("csr-header");
    num_features = header.pod<std::uint64_t>();
    num_classes = header.pod<std::uint32_t>();
    feature_id = r.section("feature-id").array<std::int32_t>();
    value = r.section("value").array<float>();
    children = r.section("children").array<std::int32_t>();
    children_idx = r.section("children-idx").array<std::int32_t>();
    roots = r.section("tree-roots").array<std::int32_t>();
  }
  maybe_corrupt_node(feature_id);
  return CsrForest::from_parts(std::move(feature_id), std::move(value), std::move(children),
                               std::move(children_idx), std::move(roots), num_features,
                               static_cast<int>(num_classes));
}

void save_hierarchical(const HierarchicalForest& forest, const std::string& path,
                       std::uint32_t version) {
  AtomicFile out(path);
  std::ostream& f = out.stream();
  write_preamble(f, kHierMagic, version);
  SectionWriter w(f, version);
  w.pod(static_cast<std::uint64_t>(forest.num_features()))
      .pod(static_cast<std::uint32_t>(forest.num_classes()))
      .pod(static_cast<std::int32_t>(forest.config().subtree_depth))
      .pod(static_cast<std::int32_t>(forest.config().root_subtree_depth))
      .pod(static_cast<std::uint64_t>(forest.real_nodes()));
  w.commit();
  w.array(forest.subtree_node_offsets()).commit();
  w.array(forest.subtree_depths()).commit();
  w.array(forest.connection_offsets()).commit();
  w.array(forest.subtree_connection()).commit();
  w.array(forest.feature_id()).commit();
  w.array(forest.value()).commit();
  w.array(forest.tree_subtree_begin()).commit();
  if (!f) throw Error("write failed: " + path);
  out.commit();
}

HierarchicalForest load_hierarchical(const std::string& path) {
  const std::vector<std::byte> blob = read_blob(path);
  ByteReader r(blob, path);
  const std::uint32_t version = read_preamble(r, kHierMagic, "hierarchical", path);

  HierConfig config;
  std::uint64_t num_features = 0, real_nodes = 0;
  std::uint32_t num_classes = 0;
  std::vector<std::uint32_t> node_offset, conn_offset, begin;
  std::vector<std::uint8_t> depth;
  std::vector<std::int32_t> connection, feature_id;
  std::vector<float> value;
  if (version == 1) {
    num_features = r.pod<std::uint64_t>();
    num_classes = r.pod<std::uint32_t>();
    config.subtree_depth = r.pod<std::int32_t>();
    config.root_subtree_depth = r.pod<std::int32_t>();
    real_nodes = r.pod<std::uint64_t>();
    node_offset = r.array<std::uint32_t>();
    depth = r.array<std::uint8_t>();
    conn_offset = r.array<std::uint32_t>();
    connection = r.array<std::int32_t>();
    feature_id = r.array<std::int32_t>();
    value = r.array<float>();
    begin = r.array<std::uint32_t>();
  } else {
    ByteReader header = r.section("hier-header");
    num_features = header.pod<std::uint64_t>();
    num_classes = header.pod<std::uint32_t>();
    config.subtree_depth = header.pod<std::int32_t>();
    config.root_subtree_depth = header.pod<std::int32_t>();
    real_nodes = header.pod<std::uint64_t>();
    node_offset = r.section("node-offsets").array<std::uint32_t>();
    depth = r.section("depths").array<std::uint8_t>();
    conn_offset = r.section("connection-offsets").array<std::uint32_t>();
    connection = r.section("connections").array<std::int32_t>();
    feature_id = r.section("feature-id").array<std::int32_t>();
    value = r.section("value").array<float>();
    begin = r.section("tree-begin").array<std::uint32_t>();
  }
  if (config.subtree_depth < 1 || config.subtree_depth > 24) {
    throw FormatError("implausible subtree depth in " + path);
  }
  maybe_corrupt_node(feature_id);
  return HierarchicalForest::from_parts(config, num_features, static_cast<int>(num_classes),
                                        real_nodes, std::move(node_offset), std::move(depth),
                                        std::move(conn_offset), std::move(connection),
                                        std::move(feature_id), std::move(value),
                                        std::move(begin));
}

std::string peek_layout_kind(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  std::uint32_t magic = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!f) throw FormatError("layout file truncated: " + path, "preamble", 0);
  if (magic == kCsrMagic) return "csr";
  if (magic == kHierMagic) return "hierarchical";
  throw FormatError("not a layout blob (unknown magic): " + path, "preamble", 0);
}

}  // namespace hrf
