#include "layout/layout_io.hpp"

#include <fstream>

#include "util/error.hpp"

namespace hrf {

namespace {

constexpr std::uint32_t kCsrMagic = 0x48524643;   // "HRFC"
constexpr std::uint32_t kHierMagic = 0x48524648;  // "HRFH"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw FormatError("layout file truncated");
  return v;
}

template <typename T>
void write_array(std::ostream& os, std::span<const T> xs) {
  write_pod(os, static_cast<std::uint64_t>(xs.size()));
  os.write(reinterpret_cast<const char*>(xs.data()),
           static_cast<std::streamsize>(xs.size_bytes()));
}

template <typename T>
std::vector<T> read_array(std::istream& is, std::uint64_t max_elems = 1ull << 32) {
  const auto n = read_pod<std::uint64_t>(is);
  if (n > max_elems) throw FormatError("layout array implausibly large");
  std::vector<T> xs(n);
  is.read(reinterpret_cast<char*>(xs.data()), static_cast<std::streamsize>(n * sizeof(T)));
  if (!is) throw FormatError("layout file truncated");
  return xs;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for writing: " + path);
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  return f;
}

}  // namespace

void save_csr(const CsrForest& csr, const std::string& path) {
  auto f = open_out(path);
  write_pod(f, kCsrMagic);
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint64_t>(csr.num_features()));
  write_pod(f, static_cast<std::uint32_t>(csr.num_classes()));
  write_array(f, csr.feature_id());
  write_array(f, csr.value());
  write_array(f, csr.children_arr());
  write_array(f, csr.children_arr_idx());
  write_array(f, csr.tree_root());
  if (!f) throw Error("write failed: " + path);
}

CsrForest load_csr(const std::string& path) {
  auto f = open_in(path);
  if (read_pod<std::uint32_t>(f) != kCsrMagic) throw FormatError("bad CSR magic in " + path);
  if (read_pod<std::uint32_t>(f) != kVersion) {
    throw FormatError("unsupported CSR version in " + path);
  }
  const auto num_features = read_pod<std::uint64_t>(f);
  const auto num_classes = read_pod<std::uint32_t>(f);
  auto feature_id = read_array<std::int32_t>(f);
  auto value = read_array<float>(f);
  auto children = read_array<std::int32_t>(f);
  auto children_idx = read_array<std::int32_t>(f);
  auto roots = read_array<std::int32_t>(f);
  return CsrForest::from_parts(std::move(feature_id), std::move(value), std::move(children),
                               std::move(children_idx), std::move(roots), num_features,
                               static_cast<int>(num_classes));
}

void save_hierarchical(const HierarchicalForest& forest, const std::string& path) {
  auto f = open_out(path);
  write_pod(f, kHierMagic);
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint64_t>(forest.num_features()));
  write_pod(f, static_cast<std::uint32_t>(forest.num_classes()));
  write_pod(f, static_cast<std::int32_t>(forest.config().subtree_depth));
  write_pod(f, static_cast<std::int32_t>(forest.config().root_subtree_depth));
  write_pod(f, static_cast<std::uint64_t>(forest.real_nodes()));
  write_array(f, forest.subtree_node_offsets());
  write_array(f, forest.subtree_depths());
  write_array(f, forest.connection_offsets());
  write_array(f, forest.subtree_connection());
  write_array(f, forest.feature_id());
  write_array(f, forest.value());
  write_array(f, forest.tree_subtree_begin());
  if (!f) throw Error("write failed: " + path);
}

HierarchicalForest load_hierarchical(const std::string& path) {
  auto f = open_in(path);
  if (read_pod<std::uint32_t>(f) != kHierMagic) {
    throw FormatError("bad hierarchical magic in " + path);
  }
  if (read_pod<std::uint32_t>(f) != kVersion) {
    throw FormatError("unsupported hierarchical version in " + path);
  }
  const auto num_features = read_pod<std::uint64_t>(f);
  const auto num_classes = read_pod<std::uint32_t>(f);
  HierConfig config;
  config.subtree_depth = read_pod<std::int32_t>(f);
  config.root_subtree_depth = read_pod<std::int32_t>(f);
  if (config.subtree_depth < 1 || config.subtree_depth > 24) {
    throw FormatError("implausible subtree depth in " + path);
  }
  const auto real_nodes = read_pod<std::uint64_t>(f);
  auto node_offset = read_array<std::uint32_t>(f);
  auto depth = read_array<std::uint8_t>(f);
  auto conn_offset = read_array<std::uint32_t>(f);
  auto connection = read_array<std::int32_t>(f);
  auto feature_id = read_array<std::int32_t>(f);
  auto value = read_array<float>(f);
  auto begin = read_array<std::uint32_t>(f);
  return HierarchicalForest::from_parts(config, num_features, static_cast<int>(num_classes),
                                        real_nodes, std::move(node_offset), std::move(depth),
                                        std::move(conn_offset), std::move(connection),
                                        std::move(feature_id), std::move(value),
                                        std::move(begin));
}

}  // namespace hrf
