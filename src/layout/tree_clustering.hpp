#pragma once

#include <cstdint>
#include <vector>

#include "forest/forest.hpp"

namespace hrf {

/// K-means tree clustering (paper §3.2.1, "Other optimizations tested",
/// Optimization 1): place trees that access similar features adjacently in
/// the memory layout, hoping their node data shares cache lines across
/// consecutive tree traversals. The paper reports *no significant benefit*;
/// this module exists to reproduce that negative result (see
/// bench/ablation_tree_clustering).
struct TreeClusteringResult {
  /// Permutation: order[i] = original index of the tree placed i-th.
  std::vector<std::size_t> order;
  /// Cluster id per original tree.
  std::vector<int> cluster;
  int num_clusters = 0;
  int iterations = 0;
};

/// Clusters trees by their feature-usage frequency vectors (how often each
/// feature appears among a tree's inner nodes, L2-normalized) with Lloyd's
/// k-means, then orders trees cluster by cluster. Deterministic in `seed`.
TreeClusteringResult cluster_trees_by_features(const Forest& forest, int k,
                                               std::uint64_t seed = 1,
                                               int max_iterations = 50);

/// Returns a forest with trees re-ordered by the permutation (majority
/// voting is order-invariant, so predictions are unchanged — asserted by
/// tests).
Forest reorder_trees(const Forest& forest, const std::vector<std::size_t>& order);

}  // namespace hrf
