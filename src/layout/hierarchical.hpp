#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"

namespace hrf {

/// Tuning parameters of the hierarchical layout (paper §3.1).
struct HierConfig {
  /// Maximum depth of non-root subtrees (the paper's SD; evaluated at 4/6/8).
  int subtree_depth = 6;
  /// Maximum depth of each tree's root subtree (the paper's RSD; Table 2
  /// evaluates 8/10/12). Must be >= 1. Defaults to subtree_depth when 0.
  int root_subtree_depth = 0;

  int effective_root_depth() const {
    return root_subtree_depth > 0 ? root_subtree_depth : subtree_depth;
  }
};

/// Size/padding report for the hierarchical encoding (drives Fig. 6).
struct HierStats {
  std::size_t num_subtrees = 0;
  std::size_t stored_nodes = 0;    // incl. padding
  std::size_t real_nodes = 0;      // original tree nodes
  std::size_t padding_nodes = 0;   // stored - real
  std::size_t connection_entries = 0;
  double padding_ratio = 0.0;      // padding / stored
};

/// The paper's hierarchical decision tree layout (§3.1, Fig. 3).
///
/// Each tree is cut into triangle-shaped subtrees of maximum depth SD (the
/// root subtree may use a larger depth RSD). Every subtree is padded to a
/// *complete binary tree*, so it is stored as a fixed-size array in which
/// the children of (subtree-local) node n sit at 2n+1 / 2n+2 — no
/// indirection. Only hops *between* subtrees consult CSR-like arrays:
/// `connection_offset[st]` locates the subtree's bottom-level slots inside
/// `subtree_connection`, which stores the global id of the child subtree
/// rooted at each bottom-level node's left/right child (-1 when absent).
///
/// Subtree ids are global across the forest; `tree_subtree_begin[t]` is the
/// id of tree t's root subtree. A subtree shorter than its depth cap (cut
/// early because the tree has no nodes below) stores `2^depth - 1` slots
/// for its actual depth and has no connection entries: by construction all
/// its bottom-level real nodes are tree leaves.
///
/// Node attribute encoding matches CSR: `feature_id == -1` marks a tree
/// leaf (and padding slots, which are unreachable), `value` is the
/// comparison threshold or the leaf's class vote.
class HierarchicalForest {
 public:
  /// Builds the hierarchical encoding of a validated forest.
  /// Throws ConfigError for out-of-range depths (SD/RSD in [1, 24]).
  static HierarchicalForest build(const Forest& forest, const HierConfig& config);

  /// Reassembles an encoding from raw arrays (deserialization path); runs
  /// validate(). Throws FormatError on inconsistency.
  static HierarchicalForest from_parts(
      HierConfig config, std::size_t num_features, int num_classes, std::size_t real_nodes,
      std::vector<std::uint32_t> subtree_node_offset, std::vector<std::uint8_t> subtree_depth,
      std::vector<std::uint32_t> connection_offset, std::vector<std::int32_t> subtree_connection,
      std::vector<std::int32_t> feature_id, std::vector<float> value,
      std::vector<std::uint32_t> tree_subtree_begin);

  const HierConfig& config() const { return config_; }
  std::size_t num_trees() const { return tree_subtree_begin_.size() - 1; }
  std::size_t num_subtrees() const { return subtree_depth_.size(); }
  std::size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  // --- per-subtree tables -------------------------------------------------
  /// Offset of subtree `st`'s node 0 inside feature_id()/value().
  std::uint32_t subtree_node_offset(std::size_t st) const { return subtree_node_offset_[st]; }
  /// Actual depth of subtree `st` (1 = single node). Node count = 2^depth-1.
  int subtree_depth(std::size_t st) const { return subtree_depth_[st]; }
  /// First entry of subtree `st`'s bottom-level connections (2 per slot).
  std::uint32_t connection_offset(std::size_t st) const { return connection_offset_[st]; }

  std::span<const std::uint32_t> subtree_node_offsets() const { return subtree_node_offset_; }
  std::span<const std::uint8_t> subtree_depths() const { return subtree_depth_; }
  std::span<const std::uint32_t> connection_offsets() const { return connection_offset_; }
  std::span<const std::int32_t> subtree_connection() const { return subtree_connection_; }
  std::span<const std::int32_t> feature_id() const { return feature_id_; }
  std::span<const float> value() const { return value_; }
  std::span<const std::uint32_t> tree_subtree_begin() const { return tree_subtree_begin_; }

  /// Root subtree id of tree `t`.
  std::uint32_t root_subtree(std::size_t t) const { return tree_subtree_begin_[t]; }

  /// Leaf value reached by `query` on tree `t` (scalar reference traversal;
  /// the GPU/FPGA kernels re-implement this walk on their machine models).
  float traverse_tree(std::size_t t, std::span<const float> query) const;

  /// Majority-vote classification using the hierarchical encoding.
  std::uint8_t classify(std::span<const float> query) const;

  /// Bytes occupied by all arrays (the Fig. 6 numerator).
  std::size_t memory_bytes() const;

  /// Original (unpadded) node count, preserved across serialization.
  std::size_t real_nodes() const { return real_nodes_; }

  HierStats stats() const;

  /// Structural self-check: offsets monotone, depths within caps,
  /// connections reference valid subtrees of the same tree, every real
  /// bottom-level inner node has both children. Throws FormatError.
  void validate() const;

 private:
  HierConfig config_;
  std::size_t num_features_ = 0;
  int num_classes_ = 2;
  std::size_t real_nodes_ = 0;

  std::vector<std::uint32_t> subtree_node_offset_;  // size S+1 (sentinel end)
  std::vector<std::uint8_t> subtree_depth_;         // size S
  std::vector<std::uint32_t> connection_offset_;    // size S+1 (sentinel end)
  std::vector<std::int32_t> subtree_connection_;    // 2 per bottom-level slot
  std::vector<std::int32_t> feature_id_;            // per stored slot
  std::vector<float> value_;                        // per stored slot
  std::vector<std::uint32_t> tree_subtree_begin_;   // size T+1
};

}  // namespace hrf
