#include "layout/csr.hpp"

#include <deque>

#include "util/error.hpp"

namespace hrf {

CsrForest CsrForest::build(const Forest& forest) {
  CsrForest csr;
  csr.num_features_ = forest.num_features();
  csr.num_classes_ = forest.num_classes();
  const ForestStats fs = forest.stats();
  csr.feature_id_.reserve(fs.total_nodes);
  csr.value_.reserve(fs.total_nodes);
  csr.children_arr_idx_.reserve(fs.total_nodes);
  csr.children_arr_.reserve(2 * (fs.total_nodes - fs.total_leaves));
  csr.tree_root_.reserve(forest.tree_count());

  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    const auto base = static_cast<std::int32_t>(csr.feature_id_.size());
    csr.tree_root_.push_back(base);

    // BFS renumbering: old node id -> new (global) id.
    std::vector<std::int32_t> renum(tree.node_count(), -1);
    std::deque<std::int32_t> queue{0};
    std::int32_t next = base;
    while (!queue.empty()) {
      const std::int32_t old_id = queue.front();
      queue.pop_front();
      renum[static_cast<std::size_t>(old_id)] = next++;
      const TreeNode& n = tree.node(static_cast<std::size_t>(old_id));
      if (!n.is_leaf()) {
        queue.push_back(n.left);
        queue.push_back(n.right);
      }
    }

    // Emit attribute + topology arrays in the new order.
    std::vector<std::int32_t> order(tree.node_count());
    for (std::size_t old_id = 0; old_id < tree.node_count(); ++old_id) {
      order[static_cast<std::size_t>(renum[old_id] - base)] = static_cast<std::int32_t>(old_id);
    }
    for (std::size_t k = 0; k < order.size(); ++k) {
      const TreeNode& n = tree.node(static_cast<std::size_t>(order[k]));
      csr.feature_id_.push_back(n.feature);
      csr.value_.push_back(n.value);
      if (n.is_leaf()) {
        csr.children_arr_idx_.push_back(-1);
      } else {
        csr.children_arr_idx_.push_back(static_cast<std::int32_t>(csr.children_arr_.size()));
        csr.children_arr_.push_back(renum[static_cast<std::size_t>(n.left)]);
        csr.children_arr_.push_back(renum[static_cast<std::size_t>(n.right)]);
      }
    }
  }
  return csr;
}

CsrForest CsrForest::from_parts(std::vector<std::int32_t> feature_id, std::vector<float> value,
                                std::vector<std::int32_t> children_arr,
                                std::vector<std::int32_t> children_arr_idx,
                                std::vector<std::int32_t> tree_root, std::size_t num_features,
                                int num_classes) {
  const auto n = static_cast<std::int32_t>(feature_id.size());
  if (value.size() != feature_id.size() || children_arr_idx.size() != feature_id.size()) {
    throw FormatError("csr: attribute array sizes disagree");
  }
  if (tree_root.empty() || n == 0) throw FormatError("csr: empty encoding");
  if (num_features == 0 || num_classes < 2 || num_classes > 256) {
    throw FormatError("csr: bad feature/class counts");
  }
  for (std::int32_t root : tree_root) {
    if (root < 0 || root >= n) throw FormatError("csr: tree root out of range");
  }
  for (std::size_t i = 0; i < feature_id.size(); ++i) {
    if (feature_id[i] == kLeafFeature) {
      if (children_arr_idx[i] != -1) throw FormatError("csr: leaf with children index");
      const float v = value[i];
      if (v < 0.0f || v >= static_cast<float>(num_classes) ||
          v != static_cast<float>(static_cast<int>(v))) {
        throw FormatError("csr: leaf value is not a class id");
      }
    } else {
      if (feature_id[i] < 0 || static_cast<std::size_t>(feature_id[i]) >= num_features) {
        throw FormatError("csr: feature id out of range");
      }
      const std::int32_t idx = children_arr_idx[i];
      if (idx < 0 || static_cast<std::size_t>(idx) + 1 >= children_arr.size() + 1 ||
          static_cast<std::size_t>(idx) + 2 > children_arr.size()) {
        throw FormatError("csr: children index out of range");
      }
      for (int c = 0; c < 2; ++c) {
        const std::int32_t child = children_arr[static_cast<std::size_t>(idx) + c];
        if (child < 0 || child >= n) throw FormatError("csr: child id out of range");
      }
    }
  }
  CsrForest csr;
  csr.feature_id_ = std::move(feature_id);
  csr.value_ = std::move(value);
  csr.children_arr_ = std::move(children_arr);
  csr.children_arr_idx_ = std::move(children_arr_idx);
  csr.tree_root_ = std::move(tree_root);
  csr.num_features_ = num_features;
  csr.num_classes_ = num_classes;
  return csr;
}

float CsrForest::traverse_tree(std::size_t t, std::span<const float> query) const {
  auto n = static_cast<std::size_t>(tree_root_[t]);
  while (feature_id_[n] != kLeafFeature) {
    const bool go_left = query[static_cast<std::size_t>(feature_id_[n])] < value_[n];
    const auto idx = static_cast<std::size_t>(children_arr_idx_[n]) + (go_left ? 0u : 1u);
    n = static_cast<std::size_t>(children_arr_[idx]);
  }
  return value_[n];
}

std::uint8_t CsrForest::classify(std::span<const float> query) const {
  require(query.size() == num_features_, "query width mismatch");
  std::uint32_t votes[256] = {};
  for (std::size_t t = 0; t < num_trees(); ++t) {
    ++votes[static_cast<std::uint8_t>(traverse_tree(t, query))];
  }
  return Forest::vote_winner({votes, static_cast<std::size_t>(num_classes_)});
}

std::size_t CsrForest::memory_bytes() const {
  return feature_id_.size() * sizeof(std::int32_t) + value_.size() * sizeof(float) +
         children_arr_.size() * sizeof(std::int32_t) +
         children_arr_idx_.size() * sizeof(std::int32_t) +
         tree_root_.size() * sizeof(std::int32_t);
}

}  // namespace hrf
