#include "layout/quantized.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace hrf {

QuantizedHierarchicalForest QuantizedHierarchicalForest::build(const HierarchicalForest& forest,
                                                               const Dataset& calibration) {
  require(calibration.num_features() == forest.num_features(),
          "calibration width != forest features");
  require(forest.num_features() <= 32'767, "too many features for int16 ids");
  require(calibration.num_samples() > 0, "need calibration rows");

  QuantizedHierarchicalForest q;
  q.num_classes_ = forest.num_classes();
  const std::size_t nf = forest.num_features();
  q.feature_lo_.assign(nf, 0.f);
  q.feature_scale_.assign(nf, 1.f);

  // Per-feature range: calibration data plus every threshold in the model
  // (so no split falls outside the representable grid).
  std::vector<float> lo(nf), hi(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    lo[f] = hi[f] = calibration.sample(0)[f];
  }
  for (std::size_t i = 0; i < calibration.num_samples(); ++i) {
    const auto row = calibration.sample(i);
    for (std::size_t f = 0; f < nf; ++f) {
      lo[f] = std::min(lo[f], row[f]);
      hi[f] = std::max(hi[f], row[f]);
    }
  }
  const auto fid = forest.feature_id();
  const auto val = forest.value();
  for (std::size_t i = 0; i < fid.size(); ++i) {
    if (fid[i] >= 0) {
      const auto f = static_cast<std::size_t>(fid[i]);
      lo[f] = std::min(lo[f], val[i]);
      hi[f] = std::max(hi[f], val[i]);
    }
  }
  for (std::size_t f = 0; f < nf; ++f) {
    q.feature_lo_[f] = lo[f];
    const float range = hi[f] - lo[f];
    q.feature_scale_[f] = range > 0.f ? 65'535.0f / range : 0.f;
  }

  // Quantize the node array (4 bytes per stored slot).
  q.nodes_.resize(fid.size());
  for (std::size_t i = 0; i < fid.size(); ++i) {
    if (fid[i] == kLeafFeature) {
      q.nodes_[i] = {kLeafFeature16, static_cast<std::uint16_t>(val[i])};
    } else {
      const auto f = static_cast<std::size_t>(fid[i]);
      const float code_f = (val[i] - q.feature_lo_[f]) * q.feature_scale_[f];
      const float clamped = std::clamp(code_f, 0.0f, 65'535.0f);
      q.nodes_[i] = {static_cast<std::int16_t>(fid[i]),
                     static_cast<std::uint16_t>(std::lround(clamped))};
    }
  }

  q.subtree_node_offset_.assign(forest.subtree_node_offsets().begin(),
                                forest.subtree_node_offsets().end());
  q.base_depth_.assign(forest.subtree_depths().begin(), forest.subtree_depths().end());
  q.connection_offset_.assign(forest.connection_offsets().begin(),
                              forest.connection_offsets().end());
  q.subtree_connection_.assign(forest.subtree_connection().begin(),
                               forest.subtree_connection().end());
  q.tree_subtree_begin_.assign(forest.tree_subtree_begin().begin(),
                               forest.tree_subtree_begin().end());
  return q;
}

void QuantizedHierarchicalForest::quantize_query(std::span<const float> query,
                                                 std::span<std::uint16_t> out) const {
  require(query.size() == feature_lo_.size() && out.size() == feature_lo_.size(),
          "query width mismatch");
  for (std::size_t f = 0; f < feature_lo_.size(); ++f) {
    const float code = (query[f] - feature_lo_[f]) * feature_scale_[f];
    out[f] = static_cast<std::uint16_t>(std::lround(std::clamp(code, 0.0f, 65'535.0f)));
  }
}

std::uint8_t QuantizedHierarchicalForest::classify(std::span<const float> query) const {
  require(query.size() == feature_lo_.size(), "query width mismatch");
  std::uint16_t codes_buf[512];
  require(feature_lo_.size() <= 512, "quantized classify supports <= 512 features");
  std::span<std::uint16_t> codes(codes_buf, feature_lo_.size());
  quantize_query(query, codes);

  std::uint32_t votes[256] = {};
  const std::size_t num_trees = tree_subtree_begin_.size() - 1;
  for (std::size_t t = 0; t < num_trees; ++t) {
    auto st = static_cast<std::size_t>(tree_subtree_begin_[t]);
    for (bool done = false; !done;) {
      const std::uint32_t off = subtree_node_offset_[st];
      const int d = base_depth_[st];
      const auto bottom_first = static_cast<std::uint32_t>(pow2(d - 1) - 1);
      std::uint32_t p = 0;
      for (;;) {
        const Node n = nodes_[off + p];
        if (n.feature == kLeafFeature16) {
          ++votes[n.threshold_q];
          done = true;
          break;
        }
        // Integer comparison in the quantized domain.
        const bool go_left = codes[static_cast<std::size_t>(n.feature)] < n.threshold_q;
        if (p >= bottom_first) {
          const std::uint32_t ci =
              connection_offset_[st] + 2 * (p - bottom_first) + (go_left ? 0u : 1u);
          st = static_cast<std::size_t>(subtree_connection_[ci]);
          break;
        }
        p = 2 * p + (go_left ? 1u : 2u);
      }
    }
  }
  return Forest::vote_winner({votes, static_cast<std::size_t>(num_classes_)});
}

double QuantizedHierarchicalForest::agreement(const HierarchicalForest& reference,
                                              const Dataset& queries) const {
  require(reference.num_features() == num_features(), "reference width mismatch");
  if (queries.num_samples() == 0) return 1.0;
  std::size_t same = 0;
  for (std::size_t i = 0; i < queries.num_samples(); ++i) {
    same += classify(queries.sample(i)) == reference.classify(queries.sample(i));
  }
  return static_cast<double>(same) / static_cast<double>(queries.num_samples());
}

float QuantizedHierarchicalForest::threshold_value(std::size_t f, std::uint16_t code) const {
  return feature_lo_[f] + static_cast<float>(code) / feature_scale_[f];
}

}  // namespace hrf
