#include "layout/tree_clustering.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {

namespace {

/// L2-normalized feature-usage histogram of one tree's inner nodes.
std::vector<double> feature_signature(const DecisionTree& tree, std::size_t num_features) {
  std::vector<double> sig(num_features, 0.0);
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) sig[static_cast<std::size_t>(n.feature)] += 1.0;
  }
  double norm = 0.0;
  for (double v : sig) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& v : sig) v /= norm;
  }
  return sig;
}

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

TreeClusteringResult cluster_trees_by_features(const Forest& forest, int k, std::uint64_t seed,
                                               int max_iterations) {
  require(k >= 1, "need at least one cluster");
  require(max_iterations >= 1, "need at least one iteration");
  const std::size_t t = forest.tree_count();
  const auto kk = static_cast<std::size_t>(std::min<std::size_t>(k, t));

  std::vector<std::vector<double>> sig;
  sig.reserve(t);
  for (std::size_t i = 0; i < t; ++i) {
    sig.push_back(feature_signature(forest.tree(i), forest.num_features()));
  }

  // Forgy init on distinct trees.
  Xoshiro256 rng(seed);
  std::vector<std::size_t> ids(t);
  std::iota(ids.begin(), ids.end(), 0u);
  for (std::size_t i = 0; i < kk; ++i) {
    std::swap(ids[i], ids[i + rng.bounded(t - i)]);
  }
  std::vector<std::vector<double>> centroid(kk);
  for (std::size_t c = 0; c < kk; ++c) centroid[c] = sig[ids[c]];

  TreeClusteringResult result;
  result.cluster.assign(t, 0);
  result.num_clusters = static_cast<int>(kk);

  for (int it = 0; it < max_iterations; ++it) {
    result.iterations = it + 1;
    bool changed = false;
    for (std::size_t i = 0; i < t; ++i) {
      int best = result.cluster[i];
      double best_d = squared_distance(sig[i], centroid[static_cast<std::size_t>(best)]);
      for (std::size_t c = 0; c < kk; ++c) {
        const double d = squared_distance(sig[i], centroid[c]);
        if (d + 1e-15 < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (best != result.cluster[i]) {
        result.cluster[i] = best;
        changed = true;
      }
    }
    if (!changed && it > 0) break;

    // Recompute centroids (empty clusters keep their previous centroid).
    std::vector<std::vector<double>> sum(kk, std::vector<double>(forest.num_features(), 0.0));
    std::vector<std::size_t> count(kk, 0);
    for (std::size_t i = 0; i < t; ++i) {
      const auto c = static_cast<std::size_t>(result.cluster[i]);
      ++count[c];
      for (std::size_t f = 0; f < sum[c].size(); ++f) sum[c][f] += sig[i][f];
    }
    for (std::size_t c = 0; c < kk; ++c) {
      if (count[c] == 0) continue;
      for (std::size_t f = 0; f < sum[c].size(); ++f) {
        centroid[c][f] = sum[c][f] / static_cast<double>(count[c]);
      }
    }
  }

  // Stable order: cluster-major, original index within a cluster.
  result.order.resize(t);
  std::iota(result.order.begin(), result.order.end(), 0u);
  std::stable_sort(result.order.begin(), result.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.cluster[a] < result.cluster[b];
                   });
  return result;
}

Forest reorder_trees(const Forest& forest, const std::vector<std::size_t>& order) {
  require(order.size() == forest.tree_count(), "permutation size != tree count");
  std::vector<char> seen(order.size(), 0);
  for (std::size_t i : order) {
    require(i < order.size() && !seen[i], "order is not a permutation");
    seen[i] = 1;
  }
  std::vector<DecisionTree> trees;
  trees.reserve(order.size());
  for (std::size_t i : order) trees.push_back(forest.tree(i));
  return Forest(std::move(trees), forest.num_features());
}

}  // namespace hrf
