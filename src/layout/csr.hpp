#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"

namespace hrf {

/// Baseline inference layout: the forest's topology in Compressed Sparse
/// Row format (paper §2.3, Fig. 2).
///
/// Per node: `feature_id` (-1 for leaves) and `value` (threshold or class
/// vote) are directly indexed by node id; `children_arr_idx[n]` points at
/// the two child ids stored consecutively in `children_arr`. All trees of
/// the forest are concatenated into one id space; `tree_root[t]` is the
/// global node id of tree t's root. Every child hop costs two dependent,
/// potentially irregular memory reads — the bottleneck the hierarchical
/// layout removes.
class CsrForest {
 public:
  /// Builds the CSR encoding of a validated forest. Nodes are numbered in
  /// per-tree breadth-first order.
  static CsrForest build(const Forest& forest);

  /// Reassembles a CSR encoding from raw arrays (deserialization path).
  /// Validates cross-references; throws FormatError on inconsistency.
  static CsrForest from_parts(std::vector<std::int32_t> feature_id, std::vector<float> value,
                              std::vector<std::int32_t> children_arr,
                              std::vector<std::int32_t> children_arr_idx,
                              std::vector<std::int32_t> tree_root, std::size_t num_features,
                              int num_classes);

  std::size_t num_trees() const { return tree_root_.size(); }
  std::size_t num_nodes() const { return feature_id_.size(); }
  std::size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  std::span<const std::int32_t> feature_id() const { return feature_id_; }
  std::span<const float> value() const { return value_; }
  std::span<const std::int32_t> children_arr() const { return children_arr_; }
  std::span<const std::int32_t> children_arr_idx() const { return children_arr_idx_; }
  std::span<const std::int32_t> tree_root() const { return tree_root_; }

  /// Leaf value reached by `query` on tree `t` (scalar reference traversal).
  float traverse_tree(std::size_t t, std::span<const float> query) const;

  /// Majority-vote classification using the CSR encoding.
  std::uint8_t classify(std::span<const float> query) const;

  /// Bytes occupied by the four CSR arrays plus tree roots (the Fig. 6
  /// denominator).
  std::size_t memory_bytes() const;

 private:
  std::vector<std::int32_t> feature_id_;
  std::vector<float> value_;
  std::vector<std::int32_t> children_arr_;
  std::vector<std::int32_t> children_arr_idx_;  // -1 for leaves
  std::vector<std::int32_t> tree_root_;
  std::size_t num_features_ = 0;
  int num_classes_ = 2;
};

}  // namespace hrf
