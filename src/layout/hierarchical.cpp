#include "layout/hierarchical.hpp"

#include <deque>
#include <string>

#include "util/error.hpp"
#include "util/math.hpp"

namespace hrf {

namespace {

/// Depth (1-based) of slot p within a complete binary tree array.
int slot_level(std::uint32_t p) { return ilog2(p + 1) + 1; }

}  // namespace

HierarchicalForest HierarchicalForest::build(const Forest& forest, const HierConfig& config) {
  require(config.subtree_depth >= 1 && config.subtree_depth <= 24,
          "subtree_depth (SD) must be in [1, 24]");
  const int rsd = config.effective_root_depth();
  require(rsd >= 1 && rsd <= 24, "root_subtree_depth (RSD) must be in [1, 24]");

  HierarchicalForest h;
  h.config_ = config;
  h.config_.root_subtree_depth = rsd;
  h.num_features_ = forest.num_features();
  h.num_classes_ = forest.num_classes();

  h.tree_subtree_begin_.reserve(forest.tree_count() + 1);
  h.subtree_node_offset_.push_back(0);
  h.connection_offset_.push_back(0);

  std::uint32_t next_subtree_id = 0;

  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    h.tree_subtree_begin_.push_back(next_subtree_id);
    h.real_nodes_ += tree.node_count();

    // FIFO over subtree roots: ids are assigned at enqueue time, so the
    // processing order below matches the id order exactly.
    std::deque<std::int32_t> pending{0};  // original node ids
    ++next_subtree_id;                    // id of the root subtree, consumed now
    bool is_root_subtree = true;

    std::vector<std::int32_t> slots;  // original node id per slot, -1 = padding

    while (!pending.empty()) {
      const std::int32_t start = pending.front();
      pending.pop_front();
      const int cap = is_root_subtree ? rsd : config.subtree_depth;
      is_root_subtree = false;

      // Fill the complete-tree slot array by implicit BFS: children of slot
      // p land at 2p+1 / 2p+2 while the level stays below the cap.
      const std::size_t max_slots = complete_tree_nodes(cap);
      slots.assign(max_slots, -1);
      slots[0] = start;
      int actual_depth = 1;
      for (std::uint32_t p = 0; p < max_slots; ++p) {
        const std::int32_t orig = slots[p];
        if (orig < 0) continue;
        const int level = slot_level(p);
        actual_depth = level > actual_depth ? level : actual_depth;
        const TreeNode& n = tree.node(static_cast<std::size_t>(orig));
        if (!n.is_leaf() && level < cap) {
          slots[2 * p + 1] = n.left;
          slots[2 * p + 2] = n.right;
        }
      }

      // Shrink a subtree cut early (no real node at the next level) to its
      // actual depth; it stays a complete tree of that smaller depth.
      const std::size_t used_slots = complete_tree_nodes(actual_depth);

      // Emit node attributes (padding slots get leaf-coded null attributes;
      // they are unreachable by construction).
      for (std::size_t p = 0; p < used_slots; ++p) {
        if (slots[p] < 0) {
          h.feature_id_.push_back(kLeafFeature);
          h.value_.push_back(0.0f);
        } else {
          const TreeNode& n = tree.node(static_cast<std::size_t>(slots[p]));
          h.feature_id_.push_back(n.feature);
          h.value_.push_back(n.value);
        }
      }
      h.subtree_node_offset_.push_back(static_cast<std::uint32_t>(h.feature_id_.size()));
      h.subtree_depth_.push_back(static_cast<std::uint8_t>(actual_depth));

      // Bottom-level connections exist only when the subtree reached its
      // cap: a shorter subtree's bottom level holds tree leaves only.
      if (actual_depth == cap) {
        const std::uint32_t bottom_first = static_cast<std::uint32_t>(pow2(cap - 1) - 1);
        const std::uint32_t bottom_count = static_cast<std::uint32_t>(pow2(cap - 1));
        for (std::uint32_t k = 0; k < bottom_count; ++k) {
          const std::int32_t orig = slots[bottom_first + k];
          if (orig >= 0 && !tree.node(static_cast<std::size_t>(orig)).is_leaf()) {
            const TreeNode& n = tree.node(static_cast<std::size_t>(orig));
            pending.push_back(n.left);
            h.subtree_connection_.push_back(static_cast<std::int32_t>(next_subtree_id++));
            pending.push_back(n.right);
            h.subtree_connection_.push_back(static_cast<std::int32_t>(next_subtree_id++));
          } else {
            h.subtree_connection_.push_back(-1);
            h.subtree_connection_.push_back(-1);
          }
        }
      }
      h.connection_offset_.push_back(static_cast<std::uint32_t>(h.subtree_connection_.size()));
    }
  }
  h.tree_subtree_begin_.push_back(next_subtree_id);
  return h;
}

HierarchicalForest HierarchicalForest::from_parts(
    HierConfig config, std::size_t num_features, int num_classes, std::size_t real_nodes,
    std::vector<std::uint32_t> subtree_node_offset, std::vector<std::uint8_t> subtree_depth,
    std::vector<std::uint32_t> connection_offset, std::vector<std::int32_t> subtree_connection,
    std::vector<std::int32_t> feature_id, std::vector<float> value,
    std::vector<std::uint32_t> tree_subtree_begin) {
  if (num_features == 0 || num_classes < 2 || num_classes > 256) {
    throw FormatError("hierarchical: bad feature/class counts");
  }
  if (feature_id.size() != value.size()) {
    throw FormatError("hierarchical: attribute array sizes disagree");
  }
  if (tree_subtree_begin.size() < 2) throw FormatError("hierarchical: no trees");
  HierarchicalForest h;
  h.config_ = config;
  h.config_.root_subtree_depth = config.effective_root_depth();
  h.num_features_ = num_features;
  h.num_classes_ = num_classes;
  h.real_nodes_ = real_nodes;
  h.subtree_node_offset_ = std::move(subtree_node_offset);
  h.subtree_depth_ = std::move(subtree_depth);
  h.connection_offset_ = std::move(connection_offset);
  h.subtree_connection_ = std::move(subtree_connection);
  h.feature_id_ = std::move(feature_id);
  h.value_ = std::move(value);
  h.tree_subtree_begin_ = std::move(tree_subtree_begin);
  h.validate();
  return h;
}

float HierarchicalForest::traverse_tree(std::size_t t, std::span<const float> query) const {
  auto st = static_cast<std::size_t>(tree_subtree_begin_[t]);
  for (;;) {
    const std::uint32_t off = subtree_node_offset_[st];
    const int d = subtree_depth_[st];
    const std::uint32_t bottom_first = static_cast<std::uint32_t>(pow2(d - 1) - 1);
    std::uint32_t p = 0;
    for (;;) {
      const std::int32_t f = feature_id_[off + p];
      if (f == kLeafFeature) return value_[off + p];
      const bool go_left = query[static_cast<std::size_t>(f)] < value_[off + p];
      if (p >= bottom_first) {
        // Inner node on the bottom level: hop to the connected subtree.
        const std::uint32_t ci = connection_offset_[st] + 2 * (p - bottom_first) + (go_left ? 0 : 1);
        st = static_cast<std::size_t>(subtree_connection_[ci]);
        break;
      }
      p = 2 * p + (go_left ? 1 : 2);
    }
  }
}

std::uint8_t HierarchicalForest::classify(std::span<const float> query) const {
  require(query.size() == num_features_, "query width mismatch");
  std::uint32_t votes[256] = {};
  for (std::size_t t = 0; t < num_trees(); ++t) {
    ++votes[static_cast<std::uint8_t>(traverse_tree(t, query))];
  }
  return Forest::vote_winner({votes, static_cast<std::size_t>(num_classes_)});
}

std::size_t HierarchicalForest::memory_bytes() const {
  return feature_id_.size() * sizeof(std::int32_t) + value_.size() * sizeof(float) +
         subtree_node_offset_.size() * sizeof(std::uint32_t) +
         subtree_depth_.size() * sizeof(std::uint8_t) +
         connection_offset_.size() * sizeof(std::uint32_t) +
         subtree_connection_.size() * sizeof(std::int32_t) +
         tree_subtree_begin_.size() * sizeof(std::uint32_t);
}

HierStats HierarchicalForest::stats() const {
  HierStats s;
  s.num_subtrees = num_subtrees();
  s.stored_nodes = feature_id_.size();
  s.real_nodes = real_nodes_;
  s.padding_nodes = s.stored_nodes - s.real_nodes;
  s.connection_entries = subtree_connection_.size();
  s.padding_ratio =
      s.stored_nodes ? static_cast<double>(s.padding_nodes) / static_cast<double>(s.stored_nodes)
                     : 0.0;
  return s;
}

void HierarchicalForest::validate() const {
  const std::size_t s = num_subtrees();
  if (subtree_node_offset_.size() != s + 1 || connection_offset_.size() != s + 1) {
    throw FormatError("hierarchical: offset table size mismatch");
  }
  const int rsd = config_.effective_root_depth();
  for (std::size_t st = 0; st < s; ++st) {
    const int d = subtree_depth_[st];
    if (d < 1 || d > std::max(rsd, config_.subtree_depth)) {
      throw FormatError("hierarchical: subtree " + std::to_string(st) + " has bad depth");
    }
    const std::uint64_t nodes = subtree_node_offset_[st + 1] - subtree_node_offset_[st];
    if (nodes != complete_tree_nodes(d)) {
      throw FormatError("hierarchical: subtree " + std::to_string(st) +
                        " node count != 2^depth-1");
    }
    const std::uint64_t conns = connection_offset_[st + 1] - connection_offset_[st];
    if (conns != 0 && conns != pow2(d)) {
      throw FormatError("hierarchical: subtree " + std::to_string(st) +
                        " has malformed connection block");
    }
  }
  // Node attributes must be sane: inner features index a real feature and
  // leaf values name a real class (padding slots are leaves with value 0).
  // Guards traversal against corrupted-in-memory or tampered blobs.
  for (std::size_t i = 0; i < feature_id_.size(); ++i) {
    const std::int32_t fid = feature_id_[i];
    if (fid != kLeafFeature &&
        (fid < 0 || static_cast<std::size_t>(fid) >= num_features_)) {
      throw FormatError("hierarchical: feature id out of range at slot " + std::to_string(i));
    }
    if (fid == kLeafFeature) {
      const float v = value_[i];
      if (!(v >= 0.0f && v < static_cast<float>(num_classes_))) {
        throw FormatError("hierarchical: leaf value is not a class id at slot " +
                          std::to_string(i));
      }
    }
  }
  // Connections must point to valid subtrees of the same tree and every
  // bottom-level inner node must have both children.
  for (std::size_t t = 0; t < num_trees(); ++t) {
    const std::uint32_t lo = tree_subtree_begin_[t];
    const std::uint32_t hi = tree_subtree_begin_[t + 1];
    for (std::uint32_t st = lo; st < hi; ++st) {
      const std::uint32_t coff = connection_offset_[st];
      const std::uint32_t cend = connection_offset_[st + 1];
      const int d = subtree_depth_[st];
      const std::uint32_t off = subtree_node_offset_[st];
      const std::uint32_t bottom_first = static_cast<std::uint32_t>(pow2(d - 1) - 1);
      for (std::uint32_t ci = coff; ci < cend; ++ci) {
        const std::int32_t target = subtree_connection_[ci];
        const std::uint32_t slot = bottom_first + (ci - coff) / 2;
        const bool inner = feature_id_[off + slot] != kLeafFeature;
        if (inner && target < 0) {
          throw FormatError("hierarchical: bottom-level inner node missing connection");
        }
        if (!inner && target >= 0) {
          throw FormatError("hierarchical: leaf/padding slot has a connection");
        }
        if (target >= 0 &&
            (static_cast<std::uint32_t>(target) < lo || static_cast<std::uint32_t>(target) >= hi)) {
          throw FormatError("hierarchical: connection escapes its tree");
        }
      }
    }
  }
}

}  // namespace hrf
