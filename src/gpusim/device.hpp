#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/config.hpp"
#include "gpusim/counters.hpp"

namespace hrf::gpusim {

/// Roofline time estimate for one kernel execution (see Device::estimate).
struct Timing {
  double cycles = 0.0;
  double seconds = 0.0;
  double compute_cycles = 0.0;
  double dram_cycles = 0.0;
  double l2_cycles = 0.0;
  double atomic_cycles = 0.0;  // additive: serialized at the L2 atomic units
  std::string limiter;         // "compute" | "dram" | "l2"
};

/// The simulated GPU.
///
/// Kernels drive it with warp-level operations:
///  * warp_load / warp_store — per-lane byte addresses + an active mask;
///    the device coalesces the access into 128-byte transactions, probes
///    the SM's L1 and the shared L2, and counts where each transaction was
///    serviced.
///  * smem_load / smem_store — shared-memory traffic (no cache model;
///    charged as issue work).
///  * warp_branch — records whether a data-dependent branch was uniform
///    across the warp's active lanes (nvprof branch_efficiency).
///  * add_instructions — issue-work proxy for arithmetic/control.
///
/// estimate() turns the counters into cycles with a throughput roofline:
/// a memory-bound kernel pays DRAM/L2 bandwidth for its transaction
/// volume; a compute-bound kernel pays instruction issue. This abstracts
/// away latency (assumed hidden by the millions of resident queries) but
/// preserves exactly the effects the paper measures: transaction counts,
/// coalescing quality, shared-memory offload and branch divergence.
class Device {
 public:
  explicit Device(const DeviceConfig& config);

  const DeviceConfig& config() const { return cfg_; }

  /// Bump allocation in the simulated global address space, 256 B aligned
  /// (matches cudaMalloc alignment guarantees).
  std::uint64_t alloc(std::size_t bytes);

  /// Cache-behaviour hint for warp_load.
  ///
  /// kTemporal marks streaming loads that all concurrently resident blocks
  /// issue at about the same time (e.g. the hybrid kernel's cooperative
  /// root-subtree staging at each tree boundary): the first touch of a
  /// line pays DRAM, re-touches are served by L2 even if the simulator's
  /// sequential block ordering would have evicted the line in between.
  /// This corrects the one place where sequential-block simulation is
  /// systematically more pessimistic than concurrent-block hardware.
  enum class LoadHint { kDefault, kTemporal };

  /// Warp-level global load: lane i reads `elem_bytes` at `addrs[i]` when
  /// active_mask bit i is set. Counts one request plus one transaction per
  /// distinct 128-byte line touched.
  void warp_load(int sm, std::span<const std::uint64_t> addrs, std::uint32_t active_mask,
                 std::size_t elem_bytes, LoadHint hint = LoadHint::kDefault);

  /// Warp-level global store (write-through accounting; no cache install).
  void warp_store(int sm, std::span<const std::uint64_t> addrs, std::uint32_t active_mask,
                  std::size_t elem_bytes);

  /// Warp-level atomic read-modify-write (atomicAdd & co.): counts the
  /// load and store traffic plus an atomic transaction per distinct line,
  /// which estimate() charges with the L2 serialization cost.
  void warp_atomic_rmw(int sm, std::span<const std::uint64_t> addrs, std::uint32_t active_mask,
                       std::size_t elem_bytes);

  /// Shared-memory access by one warp (count = warp-level instructions).
  void smem_load(std::uint64_t count = 1);
  void smem_store(std::uint64_t count = 1);

  /// Data-dependent branch: divergent when active lanes disagree.
  void warp_branch(std::uint32_t taken_mask, std::uint32_t active_mask);

  /// Charges `n` generic warp instructions (address math, compares, ...).
  void add_instructions(std::uint64_t n) { counters_.warp_instructions += n; }

  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }
  void flush_caches();

  /// Roofline estimate over the counters accumulated since the last reset.
  Timing estimate() const;

 private:
  DeviceConfig cfg_;
  Counters counters_;
  std::vector<Cache> l1_;  // one per SM
  Cache l2_;
  std::unordered_set<std::uint64_t> temporal_lines_;  // see LoadHint::kTemporal
  std::uint64_t next_addr_;
};

}  // namespace hrf::gpusim
