#pragma once

#include <cstdint>

namespace hrf::gpusim {

/// Hardware-counter analogue collected by the simulator. Field names follow
/// nvprof metrics where one exists (gld = global load).
struct Counters {
  // Warp-level global load/store instructions executed.
  std::uint64_t gld_requests = 0;
  std::uint64_t gst_requests = 0;
  // 128-byte transactions those requests decomposed into (the coalescing
  // metric: transactions/request = 1 means perfectly coalesced).
  std::uint64_t gld_transactions = 0;
  std::uint64_t gst_transactions = 0;
  // Where load transactions were serviced.
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_transactions = 0;
  // Shared memory accesses (warp-level).
  std::uint64_t smem_loads = 0;
  std::uint64_t smem_stores = 0;
  // Branch uniformity (nvprof branch_efficiency).
  std::uint64_t branches = 0;
  std::uint64_t divergent_branches = 0;
  // Global atomic read-modify-write transactions (L2-serialized).
  std::uint64_t atomic_transactions = 0;
  // Issue-cycle proxy for everything else.
  std::uint64_t warp_instructions = 0;

  /// nvprof-style branch efficiency: uniform branches / all branches.
  double branch_efficiency() const {
    return branches ? 1.0 - static_cast<double>(divergent_branches) / static_cast<double>(branches)
                    : 1.0;
  }

  /// Average transactions needed per global load request (1 = coalesced,
  /// up to 32 = fully scattered).
  double transactions_per_request() const {
    return gld_requests ? static_cast<double>(gld_transactions) / static_cast<double>(gld_requests)
                        : 0.0;
  }

  Counters& operator+=(const Counters& o) {
    gld_requests += o.gld_requests;
    gst_requests += o.gst_requests;
    gld_transactions += o.gld_transactions;
    gst_transactions += o.gst_transactions;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    dram_transactions += o.dram_transactions;
    smem_loads += o.smem_loads;
    smem_stores += o.smem_stores;
    branches += o.branches;
    divergent_branches += o.divergent_branches;
    atomic_transactions += o.atomic_transactions;
    warp_instructions += o.warp_instructions;
    return *this;
  }
};

}  // namespace hrf::gpusim
