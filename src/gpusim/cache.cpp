#include "gpusim/cache.hpp"

#include "util/error.hpp"

namespace hrf::gpusim {

namespace {
bool is_pow2(std::size_t x) { return x && (x & (x - 1)) == 0; }
}  // namespace

Cache::Cache(std::size_t capacity_bytes, int ways, std::size_t line_bytes)
    : capacity_(capacity_bytes), line_(line_bytes), ways_(ways) {
  require(is_pow2(line_bytes), "cache line size must be a power of two");
  require(ways >= 1, "cache needs at least one way");
  const std::size_t lines = capacity_bytes / line_bytes;
  require(lines >= static_cast<std::size_t>(ways), "cache smaller than one set");
  require(lines % static_cast<std::size_t>(ways) == 0, "ways must divide line count");
  sets_ = lines / static_cast<std::size_t>(ways);
  tags_.assign(lines, 0);
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t tag = addr / line_;  // line id doubles as the tag
  const std::size_t set = static_cast<std::size_t>(tag) % sets_;
  std::uint64_t* way = tags_.data() + set * static_cast<std::size_t>(ways_);

  for (int i = 0; i < ways_; ++i) {
    if (way[i] == tag + 1) {  // +1: tag 0 is the empty marker
      // Move to front (LRU order maintained by shifting).
      for (int j = i; j > 0; --j) way[j] = way[j - 1];
      way[0] = tag + 1;
      return true;
    }
  }
  // Miss: install at front, evict the last way.
  for (int j = ways_ - 1; j > 0; --j) way[j] = way[j - 1];
  way[0] = tag + 1;
  return false;
}

void Cache::flush() { tags_.assign(tags_.size(), 0); }

}  // namespace hrf::gpusim
