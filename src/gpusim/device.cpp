#include "gpusim/device.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/math.hpp"

namespace hrf::gpusim {

Device::Device(const DeviceConfig& config)
    : cfg_(config),
      l2_(config.l2_bytes, config.l2_ways, config.line_bytes),
      next_addr_(1 << 12) {  // leave page zero unused so address 0 is invalid
  fault_point("resource:gpu");  // models cuInit/cudaMalloc failing at launch
  require(config.num_sms >= 1, "device needs at least one SM");
  require(config.warp_size >= 1 && config.warp_size <= 32, "warp_size must be in [1,32]");
  l1_.reserve(static_cast<std::size_t>(config.num_sms));
  for (int s = 0; s < config.num_sms; ++s) {
    l1_.emplace_back(config.l1_bytes, config.l1_ways, config.line_bytes);
  }
}

std::uint64_t Device::alloc(std::size_t bytes) {
  const std::uint64_t base = align_up(next_addr_, 256);
  next_addr_ = base + bytes;
  return base;
}

void Device::warp_load(int sm, std::span<const std::uint64_t> addrs, std::uint32_t active_mask,
                       std::size_t elem_bytes, LoadHint hint) {
  if (active_mask == 0) return;
  ++counters_.gld_requests;
  ++counters_.warp_instructions;

  // Coalesce: distinct 128-byte lines across active lanes. A warp touches
  // at most warp_size lines (elements are naturally aligned and smaller
  // than a line, so no element straddles two lines).
  std::uint64_t lines[32];
  int n = 0;
  const std::size_t count = addrs.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!(active_mask & (1u << i))) continue;
    const std::uint64_t line = addrs[i] / cfg_.line_bytes;
    bool seen = false;
    for (int j = 0; j < n; ++j) {
      if (lines[j] == line) {
        seen = true;
        break;
      }
    }
    if (!seen) lines[n++] = line;
  }
  (void)elem_bytes;

  counters_.gld_transactions += static_cast<std::uint64_t>(n);
  Cache& l1 = l1_[static_cast<std::size_t>(sm % cfg_.num_sms)];
  for (int j = 0; j < n; ++j) {
    const std::uint64_t byte_addr = lines[j] * cfg_.line_bytes;
    if (cfg_.l1_for_global_loads && l1.access(byte_addr)) {
      ++counters_.l1_hits;
    } else if (l2_.access(byte_addr)) {
      ++counters_.l2_hits;
    } else if (hint == LoadHint::kTemporal && !temporal_lines_.insert(byte_addr).second) {
      ++counters_.l2_hits;  // re-touch by another concurrently resident block
    } else {
      ++counters_.dram_transactions;
    }
  }
}

void Device::warp_store(int sm, std::span<const std::uint64_t> addrs, std::uint32_t active_mask,
                        std::size_t elem_bytes) {
  (void)sm;
  (void)elem_bytes;
  if (active_mask == 0) return;
  ++counters_.gst_requests;
  ++counters_.warp_instructions;
  std::uint64_t lines[32];
  int n = 0;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (!(active_mask & (1u << i))) continue;
    const std::uint64_t line = addrs[i] / cfg_.line_bytes;
    bool seen = false;
    for (int j = 0; j < n; ++j) {
      if (lines[j] == line) {
        seen = true;
        break;
      }
    }
    if (!seen) lines[n++] = line;
  }
  counters_.gst_transactions += static_cast<std::uint64_t>(n);
}

void Device::warp_atomic_rmw(int sm, std::span<const std::uint64_t> addrs,
                             std::uint32_t active_mask, std::size_t elem_bytes) {
  if (active_mask == 0) return;
  // The read half probes the caches like a load; the write half counts
  // store traffic; each distinct line is one serialized atomic.
  const std::uint64_t before = counters_.gld_transactions;
  warp_load(sm, addrs, active_mask, elem_bytes);
  counters_.atomic_transactions += counters_.gld_transactions - before;
  warp_store(sm, addrs, active_mask, elem_bytes);
}

void Device::smem_load(std::uint64_t count) {
  counters_.smem_loads += count;
  counters_.warp_instructions += count;
}

void Device::smem_store(std::uint64_t count) {
  counters_.smem_stores += count;
  counters_.warp_instructions += count;
}

void Device::warp_branch(std::uint32_t taken_mask, std::uint32_t active_mask) {
  if (active_mask == 0) return;
  ++counters_.branches;
  ++counters_.warp_instructions;
  const std::uint32_t taken = taken_mask & active_mask;
  if (taken != 0 && taken != active_mask) ++counters_.divergent_branches;
}

void Device::flush_caches() {
  for (Cache& c : l1_) c.flush();
  l2_.flush();
  temporal_lines_.clear();
}

Timing Device::estimate() const {
  Timing t;
  const double issue_rate = static_cast<double>(cfg_.num_sms) * cfg_.issue_per_sm_per_cycle;
  const double divergence_extra =
      static_cast<double>(counters_.divergent_branches) * cfg_.divergence_penalty;
  t.compute_cycles =
      (static_cast<double>(counters_.warp_instructions) + divergence_extra) / issue_rate;

  const double dram_bytes_per_cycle = cfg_.dram_bandwidth_gbps / cfg_.clock_ghz;
  const double dram_bytes = static_cast<double>(counters_.dram_transactions + counters_.gst_transactions) *
                            static_cast<double>(cfg_.line_bytes);
  t.dram_cycles = dram_bytes / dram_bytes_per_cycle;

  // Every L1 miss moves a line across the L2 interface (L2 hit or fill).
  const double l2_bytes =
      static_cast<double>(counters_.l2_hits + counters_.dram_transactions +
                          counters_.gst_transactions) *
      static_cast<double>(cfg_.line_bytes);
  t.l2_cycles = l2_bytes / (dram_bytes_per_cycle * cfg_.l2_bandwidth_multiplier);

  // Atomic RMWs serialize at the L2 atomic units and cannot overlap with
  // each other, so they add on top of the bandwidth/issue roofline.
  t.atomic_cycles = static_cast<double>(counters_.atomic_transactions) * cfg_.atomic_rmw_cycles;

  t.cycles = std::max({t.compute_cycles, t.dram_cycles, t.l2_cycles}) + t.atomic_cycles;
  t.limiter = t.cycles - t.atomic_cycles == t.compute_cycles ? "compute"
              : t.cycles - t.atomic_cycles == t.dram_cycles  ? "dram"
                                                             : "l2";
  t.seconds = t.cycles / (cfg_.clock_ghz * 1e9);
  return t;
}

}  // namespace hrf::gpusim
