#pragma once

#include <cstddef>
#include <cstdint>

namespace hrf::gpusim {

/// Parameters of the simulated GPU.
///
/// The simulator is a *transaction-level SIMT model*: kernels execute
/// functionally in 32-lane lock-step warps while the device counts memory
/// transactions (with 128-byte coalescing and L1/L2 caches), shared-memory
/// accesses, and branch (non-)uniformity. Time is estimated with a roofline
/// over instruction issue and DRAM/L2 bandwidth (see Device::estimate).
/// The default preset models the paper's Pascal TITAN Xp.
struct DeviceConfig {
  int num_sms = 30;
  int warp_size = 32;
  int block_size = 256;
  std::size_t shared_mem_per_block = 48 * 1024;  // 48 KB (paper §3.2.1)

  double clock_ghz = 1.582;
  double dram_bandwidth_gbps = 547.5;  // paper §4.5
  /// L2-to-SM bandwidth relative to DRAM bandwidth.
  double l2_bandwidth_multiplier = 2.0;

  std::size_t line_bytes = 128;  // global-memory transaction size (§2.3)
  std::size_t l1_bytes = 48 * 1024;  // per SM
  int l1_ways = 4;
  /// GP102 (CC 6.1) caches global loads in the unified L1/texture cache
  /// by default; GP100 would need opt-in (-Xptxas -dlcm=ca).
  bool l1_for_global_loads = true;
  std::size_t l2_bytes = 3 * 1024 * 1024;  // device-wide
  int l2_ways = 16;

  /// Warp instructions issued per SM per cycle (Pascal: 4 schedulers).
  double issue_per_sm_per_cycle = 4.0;
  /// Average instructions charged per warp traversal step (comparison,
  /// address arithmetic, branch) on top of explicitly counted loads.
  double instructions_per_step = 8.0;
  /// Extra issue-cycle multiplier applied to divergent branches (both
  /// sides of a split warp are serialized).
  double divergence_penalty = 1.0;
  /// Serialization cost per contended atomic RMW transaction. Concurrent
  /// blocks hammering the same cache lines (e.g. a global vote matrix)
  /// serialize at the L2 atomic units; this charges that as dedicated
  /// cycles in the roofline.
  double atomic_rmw_cycles = 6.0;

  /// Nvidia TITAN Xp (Pascal, 30 SMs, 48 KB shared memory / SM).
  static DeviceConfig titan_xp() { return DeviceConfig{}; }
};

}  // namespace hrf::gpusim
