#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hrf::gpusim {

/// Set-associative cache with LRU replacement, tracked at line granularity.
/// Used for the per-SM L1 caches and the device-wide L2. Only presence is
/// modeled (no data — the simulator is functionally exact elsewhere).
class Cache {
 public:
  /// `line_bytes` must be a power of two; `ways` must divide the line
  /// count (capacity need not be a power of two — the TITAN Xp L2 is 3 MB).
  Cache(std::size_t capacity_bytes, int ways, std::size_t line_bytes);

  /// Touches the line containing `line_addr` (already line-aligned tag or a
  /// byte address; alignment is applied internally). Returns true on hit.
  /// On miss the line is installed, evicting the set's LRU line.
  bool access(std::uint64_t addr);

  void flush();

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t line_bytes() const { return line_; }
  int ways() const { return ways_; }
  std::size_t num_sets() const { return sets_; }

 private:
  std::size_t capacity_;
  std::size_t line_;
  int ways_;
  std::size_t sets_;
  // Per set: `ways_` tags in LRU order (front = most recent). Tag 0 means
  // empty (the simulator's address space starts above 0).
  std::vector<std::uint64_t> tags_;
};

}  // namespace hrf::gpusim
