#pragma once

#include <cstdint>
#include <span>

#include "gpusim/device.hpp"

namespace hrf::gpusim {

/// A host array mirrored into the simulated device address space.
///
/// Functional reads go straight to host memory (the simulator is
/// functionally exact); `addr(i)` yields the simulated device address used
/// for transaction accounting. The referenced host data must outlive the
/// view (R.4: this is a non-owning span).
template <typename T>
class DeviceArray {
 public:
  DeviceArray() = default;
  DeviceArray(Device& device, std::span<const T> host)
      : host_(host), base_(device.alloc(host.size_bytes())) {}

  T operator[](std::size_t i) const { return host_[i]; }
  std::uint64_t addr(std::size_t i) const { return base_ + i * sizeof(T); }
  std::uint64_t base() const { return base_; }
  std::size_t size() const { return host_.size(); }
  bool empty() const { return host_.empty(); }

 private:
  std::span<const T> host_{};
  std::uint64_t base_ = 0;
};

}  // namespace hrf::gpusim
