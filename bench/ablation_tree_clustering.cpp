// Ablation (paper §3.2.1, "Other optimizations tested", Optimization 1):
// K-means clustering of trees by feature usage, placing similar trees
// adjacently in the layout to promote data locality. The paper reports it
// "did not yield any significant performance benefit"; this bench
// reproduces that negative result on the simulated GPU.

#include <cstdio>

#include "bench_common.hpp"
#include "layout/tree_clustering.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("k", "comma-separated cluster counts (default 2,4,8)")
      .allow("sd", "max subtree depth (default 8)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto ks = args.get_int_list("k", {2, 4, 8});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const int sd = static_cast<int>(args.get_int("sd", 8));

  Table table({"dataset", "layout order", "indep sim-s", "vs unclustered", "hybrid sim-s",
               "vs unclustered"});

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples = paper::default_samples(kind, opt.scale);
    const Dataset queries =
        bench::head(paper::test_half(kind, samples, opt.cache_dir), opt.max_gpu_queries);
    const int depth = paper::selected_depths(kind)[1];  // middle selection
    const Forest base = paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);

    const auto run = [&](const Forest& f, Variant v) {
      ClassifierOptions copt;
      copt.backend = Backend::GpuSim;
      copt.variant = v;
      copt.layout.subtree_depth = sd;
      return Classifier(Forest(f), copt).classify(queries).seconds;
    };

    const double ind0 = run(base, Variant::Independent);
    const double hyb0 = run(base, Variant::Hybrid);
    table.row().cell(paper::name(kind)).cell("original").cell(ind0, 5).cell(1.0, 3).cell(
        hyb0, 5).cell(1.0, 3);

    for (int k : ks) {
      const TreeClusteringResult cl = cluster_trees_by_features(base, k);
      const Forest reordered = reorder_trees(base, cl.order);
      const double ind = run(reordered, Variant::Independent);
      const double hyb = run(reordered, Variant::Hybrid);
      table.row()
          .cell(paper::name(kind))
          .cell("kmeans k=" + std::to_string(k))
          .cell(ind, 5)
          .cell(ind0 / ind, 3)
          .cell(hyb, 5)
          .cell(hyb0 / hyb, 3);
    }
    std::printf("[ablation] %s done\n", paper::name(kind));
  }

  bench::emit(args, "Ablation — K-means tree clustering (paper: no significant benefit)",
              table);
  std::printf(
      "\nPaper reference (§3.2.1): 'Optimization 1, aimed at promoting data\n"
      "locality, did not yield any significant performance benefit'. Ratios\n"
      "near 1.0 reproduce that negative result.\n");
  return 0;
}
