#pragma once

// Shared plumbing for the experiment-reproduction binaries (one binary per
// paper table/figure; see DESIGN.md §4). Each binary prints the paper's
// rows/series as a Markdown table and writes a CSV next to the binary.

#include <sys/stat.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "core/hrf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hrf::bench {

/// Standard options shared by all experiment binaries.
struct CommonOptions {
  /// Dataset scale relative to the paper's sample counts (Table 1).
  /// The default 0.05 keeps the whole harness tractable on a small host;
  /// pass --scale 1.0 to reproduce at paper scale.
  double scale = 0.05;
  /// Cap on simulated-GPU query count (SIMT simulation is the expensive
  /// part; speedup ratios are scale-stable, which tests verify).
  std::size_t max_gpu_queries = 12'000;
  std::string cache_dir = "bench_cache";
  std::uint64_t seed = 42;
};

inline void add_common_flags(CliArgs& args) {
  args.allow("scale", "dataset scale vs paper sample counts (default 0.05)")
      .allow("queries", "max queries for simulated-GPU runs (default 12000)")
      .allow("cache-dir", "directory for cached datasets/forests (default bench_cache)")
      .allow("csv", "write the result table to this CSV path");
}

inline CommonOptions parse_common(const CliArgs& args) {
  CommonOptions opt;
  opt.scale = args.get_double("scale", opt.scale);
  opt.max_gpu_queries = static_cast<std::size_t>(
      args.get_int("queries", static_cast<long>(opt.max_gpu_queries)));
  opt.cache_dir = args.get("cache-dir", opt.cache_dir);
  ::mkdir(opt.cache_dir.c_str(), 0755);
  return opt;
}

/// First `n` rows of `ds` (or all of it when n >= size).
inline Dataset head(const Dataset& ds, std::size_t n) {
  if (n >= ds.num_samples()) return ds;
  Dataset out(n, ds.num_features());
  out.set_name(ds.name());
  for (std::size_t i = 0; i < n; ++i) out.push_back(ds.sample(i), ds.label(i));
  return out;
}

/// Prints the table and optionally writes the CSV requested via --csv.
inline void emit(const CliArgs& args, const std::string& title, const Table& table) {
  print_table(std::cout, title, table);
  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::printf("(csv written to %s)\n", csv.c_str());
  }
}

}  // namespace hrf::bench
