// Reproduces Fig. 5: accuracy heat-maps over (max tree depth x number of
// trees) for the three datasets. One forest of max(trees) trees is trained
// per (dataset, depth); accuracies for smaller ensembles come from prefix
// subsets (tree i is independent of the ensemble size, so a prefix of a
// 150-tree forest is a valid 50-tree forest with the same seed).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace hrf;

/// Accuracy of every prefix checkpoint in one pass over the test set.
std::vector<double> prefix_accuracies(const Forest& forest, const Dataset& test,
                                      const std::vector<int>& checkpoints) {
  const std::size_t nq = test.num_samples();
  std::vector<std::uint32_t> votes(nq, 0);
  std::vector<std::size_t> correct(checkpoints.size(), 0);
  std::size_t next = 0;
  for (std::size_t t = 0; t < forest.tree_count() && next < checkpoints.size(); ++t) {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < nq; ++i) {
      votes[i] += forest.tree(t).classify(test.sample(i));
    }
    while (next < checkpoints.size() &&
           static_cast<int>(t + 1) == checkpoints[next]) {
      const auto n_trees = static_cast<std::uint32_t>(checkpoints[next]);
      std::size_t c = 0;
#pragma omp parallel for schedule(static) reduction(+ : c)
      for (std::size_t i = 0; i < nq; ++i) {
        const std::uint8_t pred = 2 * votes[i] >= n_trees ? 1 : 0;
        c += pred == test.label(i);
      }
      correct[next++] = c;
    }
  }
  std::vector<double> acc(checkpoints.size());
  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    acc[k] = static_cast<double>(correct[k]) / static_cast<double>(nq);
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("depths", "comma-separated max tree depths (default 5,10,...,50)")
      .allow("trees", "comma-separated ensemble checkpoints (default 10,25,...,150)")
      .allow("eval-queries", "cap on test queries used for accuracy (default 20000)")
      .allow("min-samples", "floor on dataset size for accuracy fidelity (default 150000)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto depths = args.get_int_list("depths", {5, 10, 15, 20, 25, 30, 35, 40, 45, 50});
  const auto tree_counts = args.get_int_list("trees", {10, 25, 50, 75, 100, 125, 150});
  const auto eval_cap = static_cast<std::size_t>(args.get_int("eval-queries", 20'000));

  std::vector<std::string> headers{"dataset", "depth"};
  for (int t : tree_counts) headers.push_back("t=" + std::to_string(t));
  Table table(headers);

  // Accuracy plateaus need enough training data to resolve the deep
  // teacher structure (the covertype-like plateau climbs from ~80% at 29k
  // samples to ~88% at 300k), so this bench floors the dataset size even
  // at small --scale. Timing benches are unaffected by this floor.
  const auto min_samples = static_cast<std::size_t>(args.get_int("min-samples", 150'000));

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples =
        std::max(paper::default_samples(kind, opt.scale), min_samples);
    std::printf("[fig5] %s: generating %zu samples...\n", paper::name(kind), samples);
    const Dataset train = paper::train_half(kind, samples, opt.cache_dir);
    const Dataset test = bench::head(paper::test_half(kind, samples, opt.cache_dir), eval_cap);

    TrainConfig base = paper::train_config(kind, 1, tree_counts.back(), paper::ForestUse::Accuracy);
    const BinnedDataset binned(train, base.max_bins);

    for (int depth : depths) {
      TrainConfig cfg = base;
      cfg.max_depth = depth;
      WallTimer timer;
      const Forest forest = train_forest(binned, train.num_features(), cfg);
      const auto acc = prefix_accuracies(forest, test, tree_counts);
      table.row().cell(paper::name(kind)).cell(std::int64_t{depth});
      for (double a : acc) table.cell(100.0 * a, 1);
      std::printf("[fig5] %s depth %2d done (%.1fs)\n", paper::name(kind), depth,
                  timer.seconds());
    }
  }

  bench::emit(args, "Fig. 5 — accuracy (%) vs max tree depth and number of trees", table);
  std::printf(
      "\nPaper reference (Fig. 5): plateaus ~88.9%% (Covertype, by depth ~35),\n"
      "~80.2%% (Susy, by depth ~20, slight decline after), ~74.0%% (Higgs, by\n"
      "depth ~30). Expect the same plateau ordering and saturating shape.\n");
  return 0;
}
