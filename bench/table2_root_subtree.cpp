// Reproduces Table 2: effect of the root subtree depth (RSD = 8, 10, 12;
// subsequent subtree depth fixed at 8) on the GPU hybrid variant (columns
// G8/G10/G12, speedup over CSR) and on the FPGA independent variant
// (columns F8/F10/F12, modeled seconds), per dataset and tree depth.

#include <cstdio>

#include "bench_common.hpp"
#include "fpgakernels/fpga_kernels.hpp"

namespace {

using namespace hrf;

double gpu_seconds(Variant variant, const Forest& forest, const Dataset& queries, int sd,
                   int rsd) {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = variant;
  opt.layout.subtree_depth = sd;
  opt.layout.root_subtree_depth = rsd;
  return Classifier(Forest(forest), opt).classify(queries).seconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("sd", "subsequent subtree depth (default 8, as in Table 2)")
      .allow("rsd", "comma-separated root subtree depths (default 8,10,12)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const int sd = static_cast<int>(args.get_int("sd", 8));
  const auto rsds = args.get_int_list("rsd", {8, 10, 12});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));

  std::vector<std::string> headers{"dataset", "d"};
  for (int r : rsds) headers.push_back("G" + std::to_string(r) + " (x)");
  for (int r : rsds) headers.push_back("F" + std::to_string(r) + " (s)");
  Table table(headers);

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples = paper::default_samples(kind, opt.scale);
    const Dataset gpu_queries =
        bench::head(paper::test_half(kind, samples, opt.cache_dir), opt.max_gpu_queries);
    const Dataset fpga_queries = paper::test_half(kind, samples, opt.cache_dir);
    for (int depth : paper::selected_depths(kind)) {
      const Forest forest =
          paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);
      WallTimer timer;
      const double csr_s = gpu_seconds(Variant::Csr, forest, gpu_queries, sd, 0);
      table.row().cell(paper::name(kind)).cell(std::int64_t{depth});
      for (int rsd : rsds) {
        table.cell(csr_s / gpu_seconds(Variant::Hybrid, forest, gpu_queries, sd, rsd), 1);
      }
      for (int rsd : rsds) {
        HierConfig cfg;
        cfg.subtree_depth = sd;
        cfg.root_subtree_depth = rsd;
        const HierarchicalForest h = HierarchicalForest::build(forest, cfg);
        table.cell(fpgakernels::run_independent_fpga(h, fpga_queries).report.seconds, 2);
      }
      std::printf("[table2] %s depth %d done (%.1fs wall)\n", paper::name(kind), depth,
                  timer.seconds());
    }
  }

  bench::emit(args, "Table 2 — root subtree depth: GPU hybrid speedup / FPGA independent time",
              table);
  std::printf(
      "\nPaper reference (Table 2): G columns rise with RSD (e.g. Susy d=15:\n"
      "6.4 -> 8.1); F columns are nearly flat (the independent FPGA kernel\n"
      "barely uses the root subtree), with Susy/Higgs in the 22-35 s band at\n"
      "paper scale. Absolute F values scale with --scale.\n");
  return 0;
}
