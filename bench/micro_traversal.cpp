// Microbenchmarks (wall-clock, google-benchmark): native CPU inference
// over the CSR vs hierarchical layouts. The hierarchical layout's cache
// behaviour helps real CPUs for the same reason it helps the simulated
// GPU — fewer dependent indirections per step and subtree-local accesses.

#include <benchmark/benchmark.h>

#include "cpu/cpu_kernels.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"

namespace {

using namespace hrf;

struct Workload {
  Forest forest;
  CsrForest csr;
  Dataset queries;

  Workload()
      : forest(make_random_forest({.num_trees = 50,
                                   .max_depth = 18,
                                   .branch_prob = 0.72,
                                   .num_features = 20,
                                   .seed = 77})),
        csr(CsrForest::build(forest)),
        queries(make_random_queries(20'000, 20, 78)) {}
};

Workload& workload() {
  static Workload w;
  return w;
}

void BM_CpuCsr(benchmark::State& state) {
  const Workload& w = workload();
  for (auto _ : state) {
    auto preds = cpu::classify_csr(w.csr, w.queries);
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.queries.num_samples()));
}
BENCHMARK(BM_CpuCsr)->Unit(benchmark::kMillisecond);

void BM_CpuHierarchical(benchmark::State& state) {
  const Workload& w = workload();
  HierConfig cfg;
  cfg.subtree_depth = static_cast<int>(state.range(0));
  const HierarchicalForest h = HierarchicalForest::build(w.forest, cfg);
  for (auto _ : state) {
    auto preds = cpu::classify_hierarchical(h, w.queries);
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.queries.num_samples()));
}
BENCHMARK(BM_CpuHierarchical)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CpuHierarchicalBlocked(benchmark::State& state) {
  const Workload& w = workload();
  HierConfig cfg;
  cfg.subtree_depth = 6;
  const HierarchicalForest h = HierarchicalForest::build(w.forest, cfg);
  for (auto _ : state) {
    auto preds = cpu::classify_hierarchical_blocked(h, w.queries,
                                                    static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(preds.data());
  }
}
BENCHMARK(BM_CpuHierarchicalBlocked)->Arg(512)->Arg(4096)->Arg(32768)->Unit(benchmark::kMillisecond);

void BM_PointerForest(benchmark::State& state) {
  const Workload& w = workload();
  for (auto _ : state) {
    auto preds = w.forest.classify_batch(w.queries.features(), w.queries.num_samples());
    benchmark::DoNotOptimize(preds.data());
  }
}
BENCHMARK(BM_PointerForest)->Unit(benchmark::kMillisecond);

}  // namespace
