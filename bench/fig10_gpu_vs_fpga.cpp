// Reproduces Fig. 10: simulated GPU vs modeled FPGA on the Susy dataset as
// the max subtree depth varies. GPU runs the hybrid kernel (its best); the
// FPGA side reports both the independent (best replicated) and hybrid
// variants at 4 SLRs x 12 CUs.

#include <cstdio>

#include "bench_common.hpp"
#include "fpgakernels/fpga_kernels.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("depth", "tree depth (default 20)")
      .allow("sd", "comma-separated max subtree depths (default 4,6,8)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto sds = args.get_int_list("sd", {4, 6, 8});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const int depth = static_cast<int>(args.get_int("depth", 20));

  const auto kind = paper::DatasetKind::Susy;
  const std::size_t samples = paper::default_samples(kind, opt.scale);
  const Dataset fpga_queries = paper::test_half(kind, samples, opt.cache_dir);
  const Dataset gpu_queries = bench::head(fpga_queries, opt.max_gpu_queries);
  const Forest forest = paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);

  // The GPU simulation runs on a query subset; scale its simulated time to
  // the full query count (execution time is linear in queries, §4.3).
  const double gpu_scale =
      static_cast<double>(fpga_queries.num_samples()) / gpu_queries.num_samples();

  Table table({"SD", "GPU hybrid (s)", "FPGA indep 4S12C (s)", "FPGA hybrid 4S12C (s)",
               "FPGA/GPU"});
  const fpgasim::FpgaConfig fpga = fpgasim::FpgaConfig::alveo_u250();
  const fpgasim::CuLayout rep{4, 12, 300.0};
  for (int sd : sds) {
    ClassifierOptions gopt;
    gopt.backend = Backend::GpuSim;
    gopt.variant = Variant::Hybrid;
    gopt.layout.subtree_depth = sd;
    const double gpu_s =
        Classifier(Forest(forest), gopt).classify(gpu_queries).seconds * gpu_scale;

    HierConfig cfg;
    cfg.subtree_depth = sd;
    const HierarchicalForest h = HierarchicalForest::build(forest, cfg);
    const double f_ind =
        fpgakernels::run_independent_fpga(h, fpga_queries, fpga, rep).report.seconds;
    const double f_hyb = fpgakernels::run_hybrid_fpga(h, fpga_queries, fpga, rep).report.seconds;
    table.row()
        .cell(std::int64_t{sd})
        .cell(gpu_s, 4)
        .cell(f_ind, 3)
        .cell(f_hyb, 3)
        .cell(f_ind / gpu_s, 1);
    std::printf("[fig10] SD %d done\n", sd);
  }

  bench::emit(args,
              "Fig. 10 — GPU vs FPGA on Susy (depth " + std::to_string(depth) + ", 100 trees)",
              table);
  std::printf(
      "\nPaper reference (Fig. 10 / §4.5): the GPU massively outperforms the\n"
      "FPGA (higher clock, ~547.5 vs ~77 GB/s bandwidth, thousands of cores\n"
      "vs 40-48 CUs; the II-76 RAW dependency inhibits deep pipelining).\n");
  return 0;
}
