// Extension ablation: 16-bit fixed-point thresholds (paper §5 related
// work — Nakahara et al. used fixed point instead of floating point).
// Reports the memory saved, the prediction agreement with the float
// layout, and the end-task accuracy delta, per dataset.

#include <cstdio>

#include "bench_common.hpp"
#include "layout/quantized.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("sd", "max subtree depth (default 8)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const int sd = static_cast<int>(args.get_int("sd", 8));

  Table table({"dataset", "float node MB", "fixed node MB", "agreement %",
               "float acc %", "fixed acc %"});

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples = paper::default_samples(kind, opt.scale);
    const Dataset test = paper::test_half(kind, samples, opt.cache_dir);
    const Dataset eval = bench::head(test, 20'000);
    const int depth = paper::selected_depths(kind)[1];
    const Forest forest = paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);
    HierConfig cfg;
    cfg.subtree_depth = sd;
    const HierarchicalForest hier = HierarchicalForest::build(forest, cfg);
    const auto quant = QuantizedHierarchicalForest::build(hier, eval);

    double agree = quant.agreement(hier, eval);
    std::size_t float_correct = 0, fixed_correct = 0;
    for (std::size_t i = 0; i < eval.num_samples(); ++i) {
      float_correct += hier.classify(eval.sample(i)) == eval.label(i);
      fixed_correct += quant.classify(eval.sample(i)) == eval.label(i);
    }
    const double n = static_cast<double>(eval.num_samples());
    table.row()
        .cell(paper::name(kind))
        .cell(static_cast<double>(hier.feature_id().size() * 8) / 1e6, 1)
        .cell(static_cast<double>(quant.node_bytes()) / 1e6, 1)
        .cell(100.0 * agree, 2)
        .cell(100.0 * float_correct / n, 2)
        .cell(100.0 * fixed_correct / n, 2);
    std::printf("[quant] %s done\n", paper::name(kind));
  }

  bench::emit(args, "Ablation — 16-bit fixed-point thresholds (Nakahara-style, §5)", table);
  std::printf(
      "\nExpected: node storage halves, prediction agreement > 99.5%%, and\n"
      "end-task accuracy unchanged to within noise — fixed point is a safe\n"
      "trade on FPGA where integer comparators are much cheaper.\n");
  return 0;
}
