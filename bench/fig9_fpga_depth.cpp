// Reproduces Fig. 9: modeled FPGA runtime of the independent and hybrid
// variants as a function of tree depth and max subtree depth (SD = 4, 6,
// 8) on the three datasets with 100-tree forests. Like the paper's runs,
// this uses the fully replicated deployment (4 SLRs x 12 CUs) — the
// surrounding text compares against Table 3's replicated results, where
// the independent kernel's superior scalability decides the ordering.

#include <cstdio>

#include "bench_common.hpp"
#include "fpgakernels/fpga_kernels.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("sd", "comma-separated max subtree depths (default 4,6,8)")
      .allow("slrs", "SLRs used (default 4)")
      .allow("cus", "compute units per SLR (default 12)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto sds = args.get_int_list("sd", {4, 6, 8});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const fpgasim::CuLayout layout{static_cast<int>(args.get_int("slrs", 4)),
                                 static_cast<int>(args.get_int("cus", 12)), 300.0};
  const fpgasim::FpgaConfig fpga = fpgasim::FpgaConfig::alveo_u250();

  std::vector<std::string> headers{"dataset", "depth"};
  for (int sd : sds) headers.push_back("indep s SD=" + std::to_string(sd));
  for (int sd : sds) headers.push_back("hybrid s SD=" + std::to_string(sd));
  Table table(headers);

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples = paper::default_samples(kind, opt.scale);
    const Dataset queries = paper::test_half(kind, samples, opt.cache_dir);
    for (int depth : paper::selected_depths(kind)) {
      const Forest forest =
          paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);
      WallTimer timer;
      table.row().cell(paper::name(kind)).cell(std::int64_t{depth});
      std::vector<double> indep, hybrid;
      for (int sd : sds) {
        HierConfig cfg;
        cfg.subtree_depth = sd;
        const HierarchicalForest h = HierarchicalForest::build(forest, cfg);
        indep.push_back(
            fpgakernels::run_independent_fpga(h, queries, fpga, layout).report.seconds);
        hybrid.push_back(fpgakernels::run_hybrid_fpga(h, queries, fpga, layout).report.seconds);
      }
      for (double s : indep) table.cell(s, 2);
      for (double s : hybrid) table.cell(s, 2);
      std::printf("[fig9] %s depth %d done (%.1fs wall)\n", paper::name(kind), depth,
                  timer.seconds());
    }
  }

  bench::emit(args, "Fig. 9 — FPGA runtime (s) vs tree depth and subtree depth", table);
  std::printf(
      "\nPaper reference (Fig. 9): the independent variant outperforms the\n"
      "hybrid in almost all same-SD configurations (its stage has no\n"
      "replication bottleneck); deeper subtrees lower execution time for\n"
      "both; runtime grows with tree depth. Absolute values scale linearly\n"
      "with --scale.\n");
  return 0;
}
