// Microbenchmarks (wall-clock, google-benchmark): cost of building the
// CSR and hierarchical encodings from a trained forest, across subtree
// depths. Layout construction is a one-time model-compilation step, but
// its cost matters for model-update loops (e.g. periodically retrained
// fraud models).

#include <benchmark/benchmark.h>

#include "forest/random_forest_gen.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace {

using namespace hrf;

Forest& bench_forest() {
  static Forest f = make_random_forest({.num_trees = 50,
                                        .max_depth = 18,
                                        .branch_prob = 0.72,
                                        .num_features = 20,
                                        .seed = 1234});
  return f;
}

void BM_BuildCsr(benchmark::State& state) {
  const Forest& f = bench_forest();
  for (auto _ : state) {
    CsrForest csr = CsrForest::build(f);
    benchmark::DoNotOptimize(csr.num_nodes());
  }
  state.counters["nodes"] = static_cast<double>(f.stats().total_nodes);
}
BENCHMARK(BM_BuildCsr)->Unit(benchmark::kMillisecond);

void BM_BuildHierarchical(benchmark::State& state) {
  const Forest& f = bench_forest();
  HierConfig cfg;
  cfg.subtree_depth = static_cast<int>(state.range(0));
  std::size_t stored = 0;
  for (auto _ : state) {
    HierarchicalForest h = HierarchicalForest::build(f, cfg);
    stored = h.stats().stored_nodes;
    benchmark::DoNotOptimize(stored);
  }
  state.counters["stored_nodes"] = static_cast<double>(stored);
}
BENCHMARK(BM_BuildHierarchical)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_BuildHierarchicalLargeRoot(benchmark::State& state) {
  const Forest& f = bench_forest();
  HierConfig cfg;
  cfg.subtree_depth = 8;
  cfg.root_subtree_depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    HierarchicalForest h = HierarchicalForest::build(f, cfg);
    benchmark::DoNotOptimize(h.num_subtrees());
  }
}
BENCHMARK(BM_BuildHierarchicalLargeRoot)->Arg(8)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_ValidateHierarchical(benchmark::State& state) {
  const Forest& f = bench_forest();
  HierConfig cfg;
  cfg.subtree_depth = 6;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  for (auto _ : state) {
    h.validate();
  }
}
BENCHMARK(BM_ValidateHierarchical)->Unit(benchmark::kMillisecond);

}  // namespace
