// Reproduces Fig. 6: memory footprint of the hierarchical representation
// relative to CSR, as a function of the forest's max tree depth, for max
// subtree depths SD = 4, 6, 8 (100 trees per forest).

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("depths", "comma-separated max tree depths (default per-dataset selection)")
      .allow("trees", "trees per forest (default 100)")
      .allow("sd", "comma-separated max subtree depths (default 4,6,8)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto sds = args.get_int_list("sd", {4, 6, 8});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));

  std::vector<std::string> headers{"dataset", "tree depth", "csr bytes"};
  for (int sd : sds) headers.push_back("hier/csr SD=" + std::to_string(sd));
  headers.push_back("pad ratio SD=" + std::to_string(sds.back()));
  Table table(headers);

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples = paper::default_samples(kind, opt.scale);
    const auto depths = args.has("depths") ? args.get_int_list("depths", {})
                                           : paper::selected_depths(kind);
    for (int depth : depths) {
      const Forest forest =
          paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);
      const CsrForest csr = CsrForest::build(forest);
      table.row().cell(paper::name(kind)).cell(std::int64_t{depth}).cell(
          static_cast<std::uint64_t>(csr.memory_bytes()));
      double last_pad = 0.0;
      for (int sd : sds) {
        HierConfig cfg;
        cfg.subtree_depth = sd;
        const HierarchicalForest h = HierarchicalForest::build(forest, cfg);
        table.cell(static_cast<double>(h.memory_bytes()) /
                       static_cast<double>(csr.memory_bytes()),
                   3);
        last_pad = h.stats().padding_ratio;
      }
      table.cell(last_pad, 3);
      std::printf("[fig6] %s depth %d done\n", paper::name(kind), depth);
    }
  }

  bench::emit(args, "Fig. 6 — hierarchical/CSR memory footprint ratio", table);
  std::printf(
      "\nPaper reference (Fig. 6): SD 4 and 6 stay near CSR parity (~0.9-1.5x);\n"
      "SD 8 jumps substantially (more padding in bigger subtrees); deeper\n"
      "forests (Covertype) pad more than shallower ones (Susy).\n");
  return 0;
}
