// Reproduces the paper's remaining negative results on the simulated GPU:
//  * §3.2.1 Optimization 2 — one tree per thread block (2-10x slowdown
//    relative to the independent variant; global vote atomics);
//  * §5 — query presorting (Goldfarb et al.): helps lockstep traversal but
//    "would lead to an extra cost that cannot be amortized" on
//    high-dimensional ML data.

#include <cstdio>

#include "bench_common.hpp"
#include "gpukernels/ablation_kernels.hpp"
#include "gpukernels/kernels.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("sd", "max subtree depth (default 8)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const int sd = static_cast<int>(args.get_int("sd", 8));

  const auto kind = paper::DatasetKind::Susy;
  const std::size_t samples = paper::default_samples(kind, opt.scale);
  const Dataset queries =
      bench::head(paper::test_half(kind, samples, opt.cache_dir), opt.max_gpu_queries);
  const int depth = paper::selected_depths(kind)[1];
  const Forest forest = paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);
  HierConfig cfg;
  cfg.subtree_depth = sd;
  const HierarchicalForest hier = HierarchicalForest::build(forest, cfg);

  Table table({"configuration", "sim-s", "vs independent", "branch eff", "note"});

  gpusim::Device d_ind(gpusim::DeviceConfig::titan_xp());
  const auto ind = gpukernels::run_independent(d_ind, hier, queries);
  table.row().cell("independent (baseline)").cell(ind.timing.seconds, 5).cell(1.0, 2).cell(
      ind.counters.branch_efficiency(), 3).cell("");

  // --- Optimization 2: tree per block.
  gpusim::Device d_tpb(gpusim::DeviceConfig::titan_xp());
  const auto tpb = gpukernels::run_tree_per_block(d_tpb, hier, queries);
  bool same = tpb.predictions == ind.predictions;
  table.row()
      .cell("tree-per-block (Opt. 2)")
      .cell(tpb.timing.seconds, 5)
      .cell(ind.timing.seconds / tpb.timing.seconds, 2)
      .cell(tpb.counters.branch_efficiency(), 3)
      .cell(same ? "predictions identical" : "MISMATCH");

  // --- Query presorting (Goldfarb et al.).
  WallTimer sort_timer;
  const auto order = gpukernels::presort_queries(queries);
  const Dataset sorted = gpukernels::permute_queries(queries, order);
  const double sort_wall = sort_timer.seconds();
  gpusim::Device d_sorted(gpusim::DeviceConfig::titan_xp());
  const auto srt = gpukernels::run_independent(d_sorted, hier, sorted);
  char note[96];
  std::snprintf(note, sizeof note, "host presort cost: %.3f wall-s for %zu queries", sort_wall,
                queries.num_samples());
  table.row()
      .cell("independent + presorted")
      .cell(srt.timing.seconds, 5)
      .cell(ind.timing.seconds / srt.timing.seconds, 2)
      .cell(srt.counters.branch_efficiency(), 3)
      .cell(note);

  bench::emit(args, "Ablations — negative results the paper reports (Susy, depth " +
                        std::to_string(depth) + ")",
              table);
  std::printf(
      "\nPaper reference: Optimization 2 'resulted in significant slowdown'\n"
      "(the 2-10x band; our model shows the slowdown via vote-atomic\n"
      "serialization but understates it — the L2 contention of ~60\n"
      "concurrent single-tree blocks is not simulated). Presorting\n"
      "improves lockstep locality but its preprocessing cost 'cannot be\n"
      "amortized' for high-dimensional ML queries (§5) — compare the sort\n"
      "wall-time against the simulated traversal gain.\n");
  return 0;
}
