// Reproduces Fig. 8: global load requests and branch efficiency of the
// hybrid vs independent GPU variants on the Susy dataset, for SD = 4, 6, 8
// (nvprof metrics collected natively by the SIMT simulator).

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hrf;

gpusim::Counters run_counters(Variant variant, const Forest& forest, const Dataset& queries,
                              int sd) {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = variant;
  opt.layout.subtree_depth = sd;
  const Classifier clf(Forest(forest), opt);
  return *clf.classify(queries).gpu_counters;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("depth", "tree depth (default 20, the middle Susy selection)")
      .allow("sd", "comma-separated max subtree depths (default 4,6,8)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto sds = args.get_int_list("sd", {4, 6, 8});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const int depth = static_cast<int>(args.get_int("depth", 20));

  const auto kind = paper::DatasetKind::Susy;
  const std::size_t samples = paper::default_samples(kind, opt.scale);
  const Dataset queries =
      bench::head(paper::test_half(kind, samples, opt.cache_dir), opt.max_gpu_queries);
  const Forest forest = paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);

  Table table({"SD", "variant", "gld requests", "gld transactions", "smem loads",
               "branch efficiency"});
  for (int sd : sds) {
    for (Variant v : {Variant::Independent, Variant::Hybrid}) {
      const gpusim::Counters c = run_counters(v, forest, queries, sd);
      table.row()
          .cell(std::int64_t{sd})
          .cell(to_string(v))
          .cell(c.gld_requests)
          .cell(c.gld_transactions)
          .cell(c.smem_loads)
          .cell(c.branch_efficiency(), 3);
    }
    std::printf("[fig8] SD %d done\n", sd);
  }

  bench::emit(args,
              "Fig. 8 — global loads & branch efficiency, Susy (depth " +
                  std::to_string(depth) + ", 100 trees)",
              table);
  std::printf(
      "\nPaper reference (Fig. 8): the hybrid variant issues fewer global\n"
      "load requests than the independent one, the gap widening as SD grows\n"
      "(more loads served from shared memory), and has higher branch\n"
      "efficiency (the root subtree is traversed by all threads together).\n");
  return 0;
}
