// Reproduces Table 3: all FPGA code variants on the synthetic workload
// (tree depth d=15, max subtree depth s=10, t=40 trees, q=250k queries),
// with single-CU and replicated (4 SLRs x 12 CUs) configurations plus the
// split hybrid (4 SLRs x 10 CUs at 245 MHz).
//
// The paper's CSR row (162.47 s) pins down the workload: 292 cycles/step x
// 250k x 40 x ~15 steps at 300 MHz implies *complete* depth-15 trees, so
// the synthetic forest here uses branch_prob = 1.

#include <cstdio>

#include "bench_common.hpp"
#include "fpgakernels/fpga_kernels.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("queries", "query count (default 250000, as in Table 3)")
      .allow("trees", "tree count (default 40)")
      .allow("depth", "tree depth (default 15)")
      .allow("sd", "max subtree depth (default 10)");
  if (!args.validate()) return 1;
  const auto nq = static_cast<std::size_t>(args.get_int("queries", 250'000));
  const int trees = static_cast<int>(args.get_int("trees", 40));
  const int depth = static_cast<int>(args.get_int("depth", 15));
  const int sd = static_cast<int>(args.get_int("sd", 10));

  RandomForestSpec spec;
  spec.num_trees = trees;
  spec.max_depth = depth;
  spec.branch_prob = 1.0;
  spec.num_features = 20;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(nq, spec.num_features);
  const CsrForest csr = CsrForest::build(forest);
  HierConfig cfg;
  cfg.subtree_depth = sd;
  const HierarchicalForest hier = HierarchicalForest::build(forest, cfg);
  std::printf("[table3] forest: %zu nodes, %zu subtrees, %zu queries\n",
              forest.stats().total_nodes, hier.num_subtrees(), queries.num_samples());

  Table table({"Version", "Time (s)", "Stall %", "vs CSR", "f", "II"});
  double csr_seconds = 0.0;
  const auto add_row = [&](const char* name, const fpgakernels::FpgaResult& r) {
    if (csr_seconds == 0.0) csr_seconds = r.report.seconds;
    table.row()
        .cell(name)
        .cell(r.report.seconds, 2)
        .cell(r.report.stall_pct, 2)
        .cell(csr_seconds / r.report.seconds, 2)
        .cell(std::int64_t{static_cast<long>(r.report.clock_mhz)})
        .cell(r.report.ii_desc);
  };

  const fpgasim::FpgaConfig fpga = fpgasim::FpgaConfig::alveo_u250();
  const fpgasim::CuLayout single;
  add_row("Baseline (CSR)", fpgakernels::run_csr_fpga(csr, queries, fpga, single));
  add_row("Independent", fpgakernels::run_independent_fpga(hier, queries, fpga, single));
  add_row("Collaborative", fpgakernels::run_collaborative_fpga(hier, queries, fpga, single));
  add_row("Hybrid", fpgakernels::run_hybrid_fpga(hier, queries, fpga, single));
  const fpgasim::CuLayout replicated{4, 12, 300.0};
  add_row("Independent 4S12C",
          fpgakernels::run_independent_fpga(hier, queries, fpga, replicated));
  add_row("Hybrid 4S12C", fpgakernels::run_hybrid_fpga(hier, queries, fpga, replicated));
  const fpgasim::CuLayout split{4, 10, 245.0};
  add_row("Hybrid Split 4S10C",
          fpgakernels::run_hybrid_fpga(hier, queries, fpga, split, /*split_stage1=*/true));

  bench::emit(args,
              "Table 3 — FPGA variants, synthetic workload (d=" + std::to_string(depth) +
                  ", s=" + std::to_string(sd) + ", t=" + std::to_string(trees) +
                  ", q=" + std::to_string(nq) + ")",
              table);
  std::printf(
      "\nPaper reference (Table 3): CSR 162.47 s / 10.97%% stall; Independent\n"
      "54.59 s (2.98x); Collaborative 1957.8 s (0.08x, ~91%% stall); Hybrid\n"
      "29.76 s (5.46x, 25%% stall); Independent 4S12C 1.48 s (109.5x);\n"
      "Hybrid 4S12C 2.44 s (66.6x, ~80%% stall); Hybrid Split 2.23 s (72.9x,\n"
      "245 MHz). Expected orderings: hybrid best single-CU; independent best\n"
      "replicated; collaborative loses to the baseline.\n");
  return 0;
}
