// Reproduces Fig. 7: simulated-GPU speedup over the CSR baseline for the
// independent and hybrid variants at SD = 4, 6, 8, plus the cuML (FIL)
// comparison point, across the accuracy-selected tree depths of each
// dataset (100 trees). Also prints the CSR absolute times that §4.3 quotes
// (0.4-0.6 s Covertype, 1.4-3.2 s Susy, 4.3-5.2 s Higgs at paper scale).

#include <cstdio>

#include "bench_common.hpp"
#include "gpukernels/kernels.hpp"

namespace {

using namespace hrf;

double run_variant(Variant variant, const Forest& forest, const Dataset& queries, int sd) {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = variant;
  opt.layout.subtree_depth = sd;  // RSD defaults to SD, as in Fig. 7/8
  const Classifier clf(Forest(forest), opt);
  return clf.classify(queries).seconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  bench::add_common_flags(args);
  args.allow("trees", "trees per forest (default 100)")
      .allow("sd", "comma-separated max subtree depths (default 4,6,8)")
      .allow("collaborative", "also run the collaborative variant (slow; 10-20x below independent)");
  if (!args.validate()) return 1;
  const auto opt = bench::parse_common(args);
  const auto sds = args.get_int_list("sd", {4, 6, 8});
  const int num_trees = static_cast<int>(args.get_int("trees", 100));
  const bool with_collab = args.get_flag("collaborative");

  std::vector<std::string> headers{"dataset", "depth", "csr sim-s", "cuML x"};
  for (int sd : sds) headers.push_back("indep x SD=" + std::to_string(sd));
  for (int sd : sds) headers.push_back("hybrid x SD=" + std::to_string(sd));
  if (with_collab) headers.push_back("collab x SD=" + std::to_string(sds.front()));
  Table table(headers);

  for (paper::DatasetKind kind : paper::kAllDatasets) {
    const std::size_t samples = paper::default_samples(kind, opt.scale);
    const Dataset queries =
        bench::head(paper::test_half(kind, samples, opt.cache_dir), opt.max_gpu_queries);
    for (int depth : paper::selected_depths(kind)) {
      const Forest forest =
          paper::cached_forest(kind, depth, num_trees, samples, opt.cache_dir);
      WallTimer timer;
      const double csr_s = run_variant(Variant::Csr, forest, queries, sds.front());
      const double fil_s = run_variant(Variant::FilBaseline, forest, queries, sds.front());
      table.row().cell(paper::name(kind)).cell(std::int64_t{depth}).cell(csr_s, 5).cell(
          csr_s / fil_s, 2);
      for (int sd : sds) {
        table.cell(csr_s / run_variant(Variant::Independent, forest, queries, sd), 2);
      }
      for (int sd : sds) {
        table.cell(csr_s / run_variant(Variant::Hybrid, forest, queries, sd), 2);
      }
      if (with_collab) {
        table.cell(csr_s / run_variant(Variant::Collaborative, forest, queries, sds.front()), 2);
      }
      std::printf("[fig7] %s depth %d done (%.1fs wall)\n", paper::name(kind), depth,
                  timer.seconds());
    }
  }

  bench::emit(args, "Fig. 7 — simulated-GPU speedup over CSR (Num Trees = 100)", table);
  std::printf(
      "\nPaper reference (Fig. 7 / §4.3): independent 2.5-4x, hybrid 4.5-9x,\n"
      "cuML 4-5x over CSR; hybrid beats cuML at larger SD; deeper subtrees\n"
      "generally perform better. §3.2.1: collaborative is 10-20x slower than\n"
      "independent.\n");
  return 0;
}
