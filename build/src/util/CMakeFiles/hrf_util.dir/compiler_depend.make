# Empty compiler generated dependencies file for hrf_util.
# This may be replaced when dependencies are built.
