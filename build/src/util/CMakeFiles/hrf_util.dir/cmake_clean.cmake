file(REMOVE_RECURSE
  "CMakeFiles/hrf_util.dir/cli.cpp.o"
  "CMakeFiles/hrf_util.dir/cli.cpp.o.d"
  "CMakeFiles/hrf_util.dir/metrics.cpp.o"
  "CMakeFiles/hrf_util.dir/metrics.cpp.o.d"
  "CMakeFiles/hrf_util.dir/rng.cpp.o"
  "CMakeFiles/hrf_util.dir/rng.cpp.o.d"
  "CMakeFiles/hrf_util.dir/stats.cpp.o"
  "CMakeFiles/hrf_util.dir/stats.cpp.o.d"
  "CMakeFiles/hrf_util.dir/table.cpp.o"
  "CMakeFiles/hrf_util.dir/table.cpp.o.d"
  "libhrf_util.a"
  "libhrf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
