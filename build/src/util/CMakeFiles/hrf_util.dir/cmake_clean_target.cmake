file(REMOVE_RECURSE
  "libhrf_util.a"
)
