file(REMOVE_RECURSE
  "CMakeFiles/hrf_train.dir/binned.cpp.o"
  "CMakeFiles/hrf_train.dir/binned.cpp.o.d"
  "CMakeFiles/hrf_train.dir/forest_trainer.cpp.o"
  "CMakeFiles/hrf_train.dir/forest_trainer.cpp.o.d"
  "CMakeFiles/hrf_train.dir/regression.cpp.o"
  "CMakeFiles/hrf_train.dir/regression.cpp.o.d"
  "CMakeFiles/hrf_train.dir/tree_trainer.cpp.o"
  "CMakeFiles/hrf_train.dir/tree_trainer.cpp.o.d"
  "libhrf_train.a"
  "libhrf_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
