
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/binned.cpp" "src/train/CMakeFiles/hrf_train.dir/binned.cpp.o" "gcc" "src/train/CMakeFiles/hrf_train.dir/binned.cpp.o.d"
  "/root/repo/src/train/forest_trainer.cpp" "src/train/CMakeFiles/hrf_train.dir/forest_trainer.cpp.o" "gcc" "src/train/CMakeFiles/hrf_train.dir/forest_trainer.cpp.o.d"
  "/root/repo/src/train/regression.cpp" "src/train/CMakeFiles/hrf_train.dir/regression.cpp.o" "gcc" "src/train/CMakeFiles/hrf_train.dir/regression.cpp.o.d"
  "/root/repo/src/train/tree_trainer.cpp" "src/train/CMakeFiles/hrf_train.dir/tree_trainer.cpp.o" "gcc" "src/train/CMakeFiles/hrf_train.dir/tree_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hrf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/hrf_forest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
