file(REMOVE_RECURSE
  "libhrf_train.a"
)
