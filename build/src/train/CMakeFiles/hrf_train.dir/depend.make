# Empty dependencies file for hrf_train.
# This may be replaced when dependencies are built.
