# Empty compiler generated dependencies file for hrf_layout.
# This may be replaced when dependencies are built.
