
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/csr.cpp" "src/layout/CMakeFiles/hrf_layout.dir/csr.cpp.o" "gcc" "src/layout/CMakeFiles/hrf_layout.dir/csr.cpp.o.d"
  "/root/repo/src/layout/hierarchical.cpp" "src/layout/CMakeFiles/hrf_layout.dir/hierarchical.cpp.o" "gcc" "src/layout/CMakeFiles/hrf_layout.dir/hierarchical.cpp.o.d"
  "/root/repo/src/layout/layout_io.cpp" "src/layout/CMakeFiles/hrf_layout.dir/layout_io.cpp.o" "gcc" "src/layout/CMakeFiles/hrf_layout.dir/layout_io.cpp.o.d"
  "/root/repo/src/layout/quantized.cpp" "src/layout/CMakeFiles/hrf_layout.dir/quantized.cpp.o" "gcc" "src/layout/CMakeFiles/hrf_layout.dir/quantized.cpp.o.d"
  "/root/repo/src/layout/tree_clustering.cpp" "src/layout/CMakeFiles/hrf_layout.dir/tree_clustering.cpp.o" "gcc" "src/layout/CMakeFiles/hrf_layout.dir/tree_clustering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/hrf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hrf_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
