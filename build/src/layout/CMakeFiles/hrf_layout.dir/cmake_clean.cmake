file(REMOVE_RECURSE
  "CMakeFiles/hrf_layout.dir/csr.cpp.o"
  "CMakeFiles/hrf_layout.dir/csr.cpp.o.d"
  "CMakeFiles/hrf_layout.dir/hierarchical.cpp.o"
  "CMakeFiles/hrf_layout.dir/hierarchical.cpp.o.d"
  "CMakeFiles/hrf_layout.dir/layout_io.cpp.o"
  "CMakeFiles/hrf_layout.dir/layout_io.cpp.o.d"
  "CMakeFiles/hrf_layout.dir/quantized.cpp.o"
  "CMakeFiles/hrf_layout.dir/quantized.cpp.o.d"
  "CMakeFiles/hrf_layout.dir/tree_clustering.cpp.o"
  "CMakeFiles/hrf_layout.dir/tree_clustering.cpp.o.d"
  "libhrf_layout.a"
  "libhrf_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
