file(REMOVE_RECURSE
  "libhrf_layout.a"
)
