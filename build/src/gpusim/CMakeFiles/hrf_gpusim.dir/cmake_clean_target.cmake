file(REMOVE_RECURSE
  "libhrf_gpusim.a"
)
