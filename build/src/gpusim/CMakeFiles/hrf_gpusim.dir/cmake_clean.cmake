file(REMOVE_RECURSE
  "CMakeFiles/hrf_gpusim.dir/cache.cpp.o"
  "CMakeFiles/hrf_gpusim.dir/cache.cpp.o.d"
  "CMakeFiles/hrf_gpusim.dir/device.cpp.o"
  "CMakeFiles/hrf_gpusim.dir/device.cpp.o.d"
  "libhrf_gpusim.a"
  "libhrf_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
