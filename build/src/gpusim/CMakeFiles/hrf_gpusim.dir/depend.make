# Empty dependencies file for hrf_gpusim.
# This may be replaced when dependencies are built.
