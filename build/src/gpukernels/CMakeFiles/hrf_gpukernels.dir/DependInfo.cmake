
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpukernels/ablation_kernels.cpp" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/ablation_kernels.cpp.o" "gcc" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/ablation_kernels.cpp.o.d"
  "/root/repo/src/gpukernels/collaborative_kernel.cpp" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/collaborative_kernel.cpp.o" "gcc" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/collaborative_kernel.cpp.o.d"
  "/root/repo/src/gpukernels/csr_kernel.cpp" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/csr_kernel.cpp.o" "gcc" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/csr_kernel.cpp.o.d"
  "/root/repo/src/gpukernels/fil_kernel.cpp" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/fil_kernel.cpp.o" "gcc" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/fil_kernel.cpp.o.d"
  "/root/repo/src/gpukernels/hybrid_kernel.cpp" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/hybrid_kernel.cpp.o" "gcc" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/hybrid_kernel.cpp.o.d"
  "/root/repo/src/gpukernels/independent_kernel.cpp" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/independent_kernel.cpp.o" "gcc" "src/gpukernels/CMakeFiles/hrf_gpukernels.dir/independent_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/hrf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hrf_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hrf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hrf_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
