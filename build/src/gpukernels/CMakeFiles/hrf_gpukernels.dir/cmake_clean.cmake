file(REMOVE_RECURSE
  "CMakeFiles/hrf_gpukernels.dir/ablation_kernels.cpp.o"
  "CMakeFiles/hrf_gpukernels.dir/ablation_kernels.cpp.o.d"
  "CMakeFiles/hrf_gpukernels.dir/collaborative_kernel.cpp.o"
  "CMakeFiles/hrf_gpukernels.dir/collaborative_kernel.cpp.o.d"
  "CMakeFiles/hrf_gpukernels.dir/csr_kernel.cpp.o"
  "CMakeFiles/hrf_gpukernels.dir/csr_kernel.cpp.o.d"
  "CMakeFiles/hrf_gpukernels.dir/fil_kernel.cpp.o"
  "CMakeFiles/hrf_gpukernels.dir/fil_kernel.cpp.o.d"
  "CMakeFiles/hrf_gpukernels.dir/hybrid_kernel.cpp.o"
  "CMakeFiles/hrf_gpukernels.dir/hybrid_kernel.cpp.o.d"
  "CMakeFiles/hrf_gpukernels.dir/independent_kernel.cpp.o"
  "CMakeFiles/hrf_gpukernels.dir/independent_kernel.cpp.o.d"
  "libhrf_gpukernels.a"
  "libhrf_gpukernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_gpukernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
