file(REMOVE_RECURSE
  "libhrf_gpukernels.a"
)
