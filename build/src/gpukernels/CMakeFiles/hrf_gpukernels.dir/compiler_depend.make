# Empty compiler generated dependencies file for hrf_gpukernels.
# This may be replaced when dependencies are built.
