file(REMOVE_RECURSE
  "CMakeFiles/hrf_data.dir/dataset.cpp.o"
  "CMakeFiles/hrf_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hrf_data.dir/synthetic.cpp.o"
  "CMakeFiles/hrf_data.dir/synthetic.cpp.o.d"
  "libhrf_data.a"
  "libhrf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
