file(REMOVE_RECURSE
  "libhrf_data.a"
)
