# Empty dependencies file for hrf_data.
# This may be replaced when dependencies are built.
