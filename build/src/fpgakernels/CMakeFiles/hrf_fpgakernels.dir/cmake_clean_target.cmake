file(REMOVE_RECURSE
  "libhrf_fpgakernels.a"
)
