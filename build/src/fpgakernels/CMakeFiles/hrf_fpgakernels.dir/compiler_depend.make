# Empty compiler generated dependencies file for hrf_fpgakernels.
# This may be replaced when dependencies are built.
