file(REMOVE_RECURSE
  "CMakeFiles/hrf_fpgakernels.dir/fpga_kernels.cpp.o"
  "CMakeFiles/hrf_fpgakernels.dir/fpga_kernels.cpp.o.d"
  "CMakeFiles/hrf_fpgakernels.dir/traversal_counts.cpp.o"
  "CMakeFiles/hrf_fpgakernels.dir/traversal_counts.cpp.o.d"
  "libhrf_fpgakernels.a"
  "libhrf_fpgakernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_fpgakernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
