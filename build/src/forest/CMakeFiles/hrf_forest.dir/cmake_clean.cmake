file(REMOVE_RECURSE
  "CMakeFiles/hrf_forest.dir/decision_tree.cpp.o"
  "CMakeFiles/hrf_forest.dir/decision_tree.cpp.o.d"
  "CMakeFiles/hrf_forest.dir/forest.cpp.o"
  "CMakeFiles/hrf_forest.dir/forest.cpp.o.d"
  "CMakeFiles/hrf_forest.dir/importance.cpp.o"
  "CMakeFiles/hrf_forest.dir/importance.cpp.o.d"
  "CMakeFiles/hrf_forest.dir/random_forest_gen.cpp.o"
  "CMakeFiles/hrf_forest.dir/random_forest_gen.cpp.o.d"
  "libhrf_forest.a"
  "libhrf_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
