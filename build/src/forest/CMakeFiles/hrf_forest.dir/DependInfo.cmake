
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forest/decision_tree.cpp" "src/forest/CMakeFiles/hrf_forest.dir/decision_tree.cpp.o" "gcc" "src/forest/CMakeFiles/hrf_forest.dir/decision_tree.cpp.o.d"
  "/root/repo/src/forest/forest.cpp" "src/forest/CMakeFiles/hrf_forest.dir/forest.cpp.o" "gcc" "src/forest/CMakeFiles/hrf_forest.dir/forest.cpp.o.d"
  "/root/repo/src/forest/importance.cpp" "src/forest/CMakeFiles/hrf_forest.dir/importance.cpp.o" "gcc" "src/forest/CMakeFiles/hrf_forest.dir/importance.cpp.o.d"
  "/root/repo/src/forest/random_forest_gen.cpp" "src/forest/CMakeFiles/hrf_forest.dir/random_forest_gen.cpp.o" "gcc" "src/forest/CMakeFiles/hrf_forest.dir/random_forest_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
