file(REMOVE_RECURSE
  "libhrf_forest.a"
)
