# Empty compiler generated dependencies file for hrf_forest.
# This may be replaced when dependencies are built.
