# Empty dependencies file for hrf_forest.
# This may be replaced when dependencies are built.
