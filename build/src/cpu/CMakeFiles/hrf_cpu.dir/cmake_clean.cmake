file(REMOVE_RECURSE
  "CMakeFiles/hrf_cpu.dir/cpu_kernels.cpp.o"
  "CMakeFiles/hrf_cpu.dir/cpu_kernels.cpp.o.d"
  "libhrf_cpu.a"
  "libhrf_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
