file(REMOVE_RECURSE
  "libhrf_cpu.a"
)
