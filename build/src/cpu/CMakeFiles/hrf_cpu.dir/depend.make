# Empty dependencies file for hrf_cpu.
# This may be replaced when dependencies are built.
