file(REMOVE_RECURSE
  "libhrf_fpgasim.a"
)
