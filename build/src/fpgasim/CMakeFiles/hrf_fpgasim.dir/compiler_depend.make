# Empty compiler generated dependencies file for hrf_fpgasim.
# This may be replaced when dependencies are built.
