
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpgasim/pipeline.cpp" "src/fpgasim/CMakeFiles/hrf_fpgasim.dir/pipeline.cpp.o" "gcc" "src/fpgasim/CMakeFiles/hrf_fpgasim.dir/pipeline.cpp.o.d"
  "/root/repo/src/fpgasim/resources.cpp" "src/fpgasim/CMakeFiles/hrf_fpgasim.dir/resources.cpp.o" "gcc" "src/fpgasim/CMakeFiles/hrf_fpgasim.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hrf_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/hrf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hrf_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
