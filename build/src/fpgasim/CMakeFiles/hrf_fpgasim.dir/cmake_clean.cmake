file(REMOVE_RECURSE
  "CMakeFiles/hrf_fpgasim.dir/pipeline.cpp.o"
  "CMakeFiles/hrf_fpgasim.dir/pipeline.cpp.o.d"
  "CMakeFiles/hrf_fpgasim.dir/resources.cpp.o"
  "CMakeFiles/hrf_fpgasim.dir/resources.cpp.o.d"
  "libhrf_fpgasim.a"
  "libhrf_fpgasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_fpgasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
