file(REMOVE_RECURSE
  "libhrf_core.a"
)
