file(REMOVE_RECURSE
  "CMakeFiles/hrf_core.dir/classifier.cpp.o"
  "CMakeFiles/hrf_core.dir/classifier.cpp.o.d"
  "CMakeFiles/hrf_core.dir/paper.cpp.o"
  "CMakeFiles/hrf_core.dir/paper.cpp.o.d"
  "libhrf_core.a"
  "libhrf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
