# Empty compiler generated dependencies file for hrf_core.
# This may be replaced when dependencies are built.
