file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_kernels.dir/fpgakernels/test_fpga_kernels.cpp.o"
  "CMakeFiles/test_fpga_kernels.dir/fpgakernels/test_fpga_kernels.cpp.o.d"
  "test_fpga_kernels"
  "test_fpga_kernels.pdb"
  "test_fpga_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
