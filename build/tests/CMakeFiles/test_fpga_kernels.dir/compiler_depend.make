# Empty compiler generated dependencies file for test_fpga_kernels.
# This may be replaced when dependencies are built.
