
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fpgakernels/test_fpga_kernels.cpp" "tests/CMakeFiles/test_fpga_kernels.dir/fpgakernels/test_fpga_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_fpga_kernels.dir/fpgakernels/test_fpga_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/hrf_train.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hrf_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gpukernels/CMakeFiles/hrf_gpukernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hrf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/fpgakernels/CMakeFiles/hrf_fpgakernels.dir/DependInfo.cmake"
  "/root/repo/build/src/fpgasim/CMakeFiles/hrf_fpgasim.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hrf_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hrf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/hrf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
