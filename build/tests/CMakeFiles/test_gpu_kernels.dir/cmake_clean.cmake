file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_kernels.dir/gpukernels/test_gpu_kernels.cpp.o"
  "CMakeFiles/test_gpu_kernels.dir/gpukernels/test_gpu_kernels.cpp.o.d"
  "test_gpu_kernels"
  "test_gpu_kernels.pdb"
  "test_gpu_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
