# Empty dependencies file for test_scale_stability.
# This may be replaced when dependencies are built.
