file(REMOVE_RECURSE
  "CMakeFiles/test_scale_stability.dir/integration/test_scale_stability.cpp.o"
  "CMakeFiles/test_scale_stability.dir/integration/test_scale_stability.cpp.o.d"
  "test_scale_stability"
  "test_scale_stability.pdb"
  "test_scale_stability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
