file(REMOVE_RECURSE
  "CMakeFiles/test_paper_formulas.dir/integration/test_paper_formulas.cpp.o"
  "CMakeFiles/test_paper_formulas.dir/integration/test_paper_formulas.cpp.o.d"
  "test_paper_formulas"
  "test_paper_formulas.pdb"
  "test_paper_formulas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
