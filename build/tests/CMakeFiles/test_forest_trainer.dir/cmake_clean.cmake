file(REMOVE_RECURSE
  "CMakeFiles/test_forest_trainer.dir/train/test_forest_trainer.cpp.o"
  "CMakeFiles/test_forest_trainer.dir/train/test_forest_trainer.cpp.o.d"
  "test_forest_trainer"
  "test_forest_trainer.pdb"
  "test_forest_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forest_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
