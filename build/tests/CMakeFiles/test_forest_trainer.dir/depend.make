# Empty dependencies file for test_forest_trainer.
# This may be replaced when dependencies are built.
