file(REMOVE_RECURSE
  "CMakeFiles/test_tree_clustering.dir/layout/test_tree_clustering.cpp.o"
  "CMakeFiles/test_tree_clustering.dir/layout/test_tree_clustering.cpp.o.d"
  "test_tree_clustering"
  "test_tree_clustering.pdb"
  "test_tree_clustering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
