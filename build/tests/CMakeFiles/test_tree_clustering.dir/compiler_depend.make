# Empty compiler generated dependencies file for test_tree_clustering.
# This may be replaced when dependencies are built.
