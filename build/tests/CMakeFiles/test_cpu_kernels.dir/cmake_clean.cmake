file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_kernels.dir/cpu/test_cpu_kernels.cpp.o"
  "CMakeFiles/test_cpu_kernels.dir/cpu/test_cpu_kernels.cpp.o.d"
  "test_cpu_kernels"
  "test_cpu_kernels.pdb"
  "test_cpu_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
