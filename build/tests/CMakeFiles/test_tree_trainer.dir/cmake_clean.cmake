file(REMOVE_RECURSE
  "CMakeFiles/test_tree_trainer.dir/train/test_tree_trainer.cpp.o"
  "CMakeFiles/test_tree_trainer.dir/train/test_tree_trainer.cpp.o.d"
  "test_tree_trainer"
  "test_tree_trainer.pdb"
  "test_tree_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
