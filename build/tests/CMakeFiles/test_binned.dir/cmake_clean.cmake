file(REMOVE_RECURSE
  "CMakeFiles/test_binned.dir/train/test_binned.cpp.o"
  "CMakeFiles/test_binned.dir/train/test_binned.cpp.o.d"
  "test_binned"
  "test_binned.pdb"
  "test_binned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
