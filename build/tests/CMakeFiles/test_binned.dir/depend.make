# Empty dependencies file for test_binned.
# This may be replaced when dependencies are built.
