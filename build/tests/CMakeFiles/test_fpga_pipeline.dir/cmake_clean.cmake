file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_pipeline.dir/fpgasim/test_fpga_pipeline.cpp.o"
  "CMakeFiles/test_fpga_pipeline.dir/fpgasim/test_fpga_pipeline.cpp.o.d"
  "test_fpga_pipeline"
  "test_fpga_pipeline.pdb"
  "test_fpga_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
