file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_resources.dir/fpgasim/test_resources.cpp.o"
  "CMakeFiles/test_fpga_resources.dir/fpgasim/test_resources.cpp.o.d"
  "test_fpga_resources"
  "test_fpga_resources.pdb"
  "test_fpga_resources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
