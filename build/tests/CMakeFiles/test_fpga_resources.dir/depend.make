# Empty dependencies file for test_fpga_resources.
# This may be replaced when dependencies are built.
