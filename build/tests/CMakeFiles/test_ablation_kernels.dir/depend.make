# Empty dependencies file for test_ablation_kernels.
# This may be replaced when dependencies are built.
