file(REMOVE_RECURSE
  "CMakeFiles/test_ablation_kernels.dir/gpukernels/test_ablation_kernels.cpp.o"
  "CMakeFiles/test_ablation_kernels.dir/gpukernels/test_ablation_kernels.cpp.o.d"
  "test_ablation_kernels"
  "test_ablation_kernels.pdb"
  "test_ablation_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ablation_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
