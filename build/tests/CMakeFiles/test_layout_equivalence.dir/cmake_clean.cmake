file(REMOVE_RECURSE
  "CMakeFiles/test_layout_equivalence.dir/layout/test_equivalence.cpp.o"
  "CMakeFiles/test_layout_equivalence.dir/layout/test_equivalence.cpp.o.d"
  "test_layout_equivalence"
  "test_layout_equivalence.pdb"
  "test_layout_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
