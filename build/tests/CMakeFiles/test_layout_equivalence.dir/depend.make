# Empty dependencies file for test_layout_equivalence.
# This may be replaced when dependencies are built.
