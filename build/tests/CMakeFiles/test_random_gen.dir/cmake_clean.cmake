file(REMOVE_RECURSE
  "CMakeFiles/test_random_gen.dir/forest/test_random_gen.cpp.o"
  "CMakeFiles/test_random_gen.dir/forest/test_random_gen.cpp.o.d"
  "test_random_gen"
  "test_random_gen.pdb"
  "test_random_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
