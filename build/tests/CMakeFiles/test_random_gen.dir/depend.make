# Empty dependencies file for test_random_gen.
# This may be replaced when dependencies are built.
