file(REMOVE_RECURSE
  "CMakeFiles/test_layout_io.dir/layout/test_layout_io.cpp.o"
  "CMakeFiles/test_layout_io.dir/layout/test_layout_io.cpp.o.d"
  "test_layout_io"
  "test_layout_io.pdb"
  "test_layout_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
