# Empty dependencies file for hrf_cli.
# This may be replaced when dependencies are built.
