file(REMOVE_RECURSE
  "CMakeFiles/hrf_cli.dir/hrf_cli.cpp.o"
  "CMakeFiles/hrf_cli.dir/hrf_cli.cpp.o.d"
  "hrf_cli"
  "hrf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
