file(REMOVE_RECURSE
  "../bench/micro_traversal"
  "../bench/micro_traversal.pdb"
  "CMakeFiles/micro_traversal.dir/micro_traversal.cpp.o"
  "CMakeFiles/micro_traversal.dir/micro_traversal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
