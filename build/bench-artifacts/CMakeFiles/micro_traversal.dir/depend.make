# Empty dependencies file for micro_traversal.
# This may be replaced when dependencies are built.
