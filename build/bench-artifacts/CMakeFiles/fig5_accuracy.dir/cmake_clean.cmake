file(REMOVE_RECURSE
  "../bench/fig5_accuracy"
  "../bench/fig5_accuracy.pdb"
  "CMakeFiles/fig5_accuracy.dir/fig5_accuracy.cpp.o"
  "CMakeFiles/fig5_accuracy.dir/fig5_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
