# Empty compiler generated dependencies file for ablation_negative_results.
# This may be replaced when dependencies are built.
