file(REMOVE_RECURSE
  "../bench/ablation_negative_results"
  "../bench/ablation_negative_results.pdb"
  "CMakeFiles/ablation_negative_results.dir/ablation_negative_results.cpp.o"
  "CMakeFiles/ablation_negative_results.dir/ablation_negative_results.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_negative_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
