# Empty dependencies file for fig6_memory_footprint.
# This may be replaced when dependencies are built.
