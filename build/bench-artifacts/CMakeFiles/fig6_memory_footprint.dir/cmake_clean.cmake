file(REMOVE_RECURSE
  "../bench/fig6_memory_footprint"
  "../bench/fig6_memory_footprint.pdb"
  "CMakeFiles/fig6_memory_footprint.dir/fig6_memory_footprint.cpp.o"
  "CMakeFiles/fig6_memory_footprint.dir/fig6_memory_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
