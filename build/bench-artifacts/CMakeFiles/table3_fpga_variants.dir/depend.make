# Empty dependencies file for table3_fpga_variants.
# This may be replaced when dependencies are built.
