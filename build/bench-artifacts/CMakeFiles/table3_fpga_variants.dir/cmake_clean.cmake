file(REMOVE_RECURSE
  "../bench/table3_fpga_variants"
  "../bench/table3_fpga_variants.pdb"
  "CMakeFiles/table3_fpga_variants.dir/table3_fpga_variants.cpp.o"
  "CMakeFiles/table3_fpga_variants.dir/table3_fpga_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fpga_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
