# Empty dependencies file for fig7_gpu_speedup.
# This may be replaced when dependencies are built.
