file(REMOVE_RECURSE
  "../bench/fig7_gpu_speedup"
  "../bench/fig7_gpu_speedup.pdb"
  "CMakeFiles/fig7_gpu_speedup.dir/fig7_gpu_speedup.cpp.o"
  "CMakeFiles/fig7_gpu_speedup.dir/fig7_gpu_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gpu_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
