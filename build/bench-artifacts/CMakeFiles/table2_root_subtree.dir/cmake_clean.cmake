file(REMOVE_RECURSE
  "../bench/table2_root_subtree"
  "../bench/table2_root_subtree.pdb"
  "CMakeFiles/table2_root_subtree.dir/table2_root_subtree.cpp.o"
  "CMakeFiles/table2_root_subtree.dir/table2_root_subtree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_root_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
