# Empty compiler generated dependencies file for table2_root_subtree.
# This may be replaced when dependencies are built.
