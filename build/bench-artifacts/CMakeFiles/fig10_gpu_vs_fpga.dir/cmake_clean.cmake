file(REMOVE_RECURSE
  "../bench/fig10_gpu_vs_fpga"
  "../bench/fig10_gpu_vs_fpga.pdb"
  "CMakeFiles/fig10_gpu_vs_fpga.dir/fig10_gpu_vs_fpga.cpp.o"
  "CMakeFiles/fig10_gpu_vs_fpga.dir/fig10_gpu_vs_fpga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gpu_vs_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
