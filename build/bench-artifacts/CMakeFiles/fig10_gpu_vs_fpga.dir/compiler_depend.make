# Empty compiler generated dependencies file for fig10_gpu_vs_fpga.
# This may be replaced when dependencies are built.
