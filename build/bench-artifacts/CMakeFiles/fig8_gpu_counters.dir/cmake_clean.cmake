file(REMOVE_RECURSE
  "../bench/fig8_gpu_counters"
  "../bench/fig8_gpu_counters.pdb"
  "CMakeFiles/fig8_gpu_counters.dir/fig8_gpu_counters.cpp.o"
  "CMakeFiles/fig8_gpu_counters.dir/fig8_gpu_counters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_gpu_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
