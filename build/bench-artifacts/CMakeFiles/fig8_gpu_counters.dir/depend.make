# Empty dependencies file for fig8_gpu_counters.
# This may be replaced when dependencies are built.
