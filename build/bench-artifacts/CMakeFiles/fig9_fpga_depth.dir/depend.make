# Empty dependencies file for fig9_fpga_depth.
# This may be replaced when dependencies are built.
