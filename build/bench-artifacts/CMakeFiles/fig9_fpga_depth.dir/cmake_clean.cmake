file(REMOVE_RECURSE
  "../bench/fig9_fpga_depth"
  "../bench/fig9_fpga_depth.pdb"
  "CMakeFiles/fig9_fpga_depth.dir/fig9_fpga_depth.cpp.o"
  "CMakeFiles/fig9_fpga_depth.dir/fig9_fpga_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fpga_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
