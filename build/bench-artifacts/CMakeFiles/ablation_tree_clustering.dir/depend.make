# Empty dependencies file for ablation_tree_clustering.
# This may be replaced when dependencies are built.
