file(REMOVE_RECURSE
  "../bench/ablation_tree_clustering"
  "../bench/ablation_tree_clustering.pdb"
  "CMakeFiles/ablation_tree_clustering.dir/ablation_tree_clustering.cpp.o"
  "CMakeFiles/ablation_tree_clustering.dir/ablation_tree_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
