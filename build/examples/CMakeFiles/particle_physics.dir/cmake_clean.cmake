file(REMOVE_RECURSE
  "CMakeFiles/particle_physics.dir/particle_physics.cpp.o"
  "CMakeFiles/particle_physics.dir/particle_physics.cpp.o.d"
  "particle_physics"
  "particle_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
