# Empty compiler generated dependencies file for particle_physics.
# This may be replaced when dependencies are built.
