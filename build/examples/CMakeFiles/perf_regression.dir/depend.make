# Empty dependencies file for perf_regression.
# This may be replaced when dependencies are built.
