file(REMOVE_RECURSE
  "CMakeFiles/perf_regression.dir/perf_regression.cpp.o"
  "CMakeFiles/perf_regression.dir/perf_regression.cpp.o.d"
  "perf_regression"
  "perf_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
