file(REMOVE_RECURSE
  "CMakeFiles/layout_tuning.dir/layout_tuning.cpp.o"
  "CMakeFiles/layout_tuning.dir/layout_tuning.cpp.o.d"
  "layout_tuning"
  "layout_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
