#!/usr/bin/env bash
# Runs the tier-1 test suite three ways: a plain RelWithDebInfo build, an
# ASan+UBSan build (HRF_SANITIZE=address;undefined), and a TSan build
# (HRF_SANITIZE=thread) running the concurrency suites. All must be clean.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

run_suite() {  # run_suite <build-dir> <extra cmake args...>
  local dir="$1"; shift
  echo "=== configure $dir ==="
  cmake -B "$dir" -S . -DHRF_BUILD_BENCHES=OFF "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  all|--plain-only)
    run_suite build
    ;;&
  all|--sanitize-only)
    # Sanitized configs keep examples/tools on so the CLI end-to-end test
    # (which needs the hrf_cli target) runs under ASan+UBSan too.
    run_suite build-asan "-DHRF_SANITIZE=address;undefined"
    ;;&
  all|--tsan-only)
    # TSan build runs only the concurrency suites (serving layer, fault
    # injector, counter registry): that is where the data races live, and
    # libgomp is not TSan-instrumented, so the OpenMP-parallel numeric
    # suites would drown the signal in false positives. For the same
    # reason the tests themselves run with OpenMP forced sequential.
    echo "=== configure build-tsan ==="
    cmake -B build-tsan -S . -DHRF_BUILD_BENCHES=OFF "-DHRF_SANITIZE=thread"
    echo "=== build build-tsan ==="
    cmake --build build-tsan -j "$JOBS" --target test_server test_circuit_breaker test_fault test_metrics test_histogram
    echo "=== test build-tsan (concurrency suites) ==="
    OMP_NUM_THREADS=1 TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
            -R '(ForestServer|CircuitBreaker|FaultInjector|CounterRegistry|LatencyHistogram)'
    ;;&
  all|--plain-only|--sanitize-only|--tsan-only)
    echo "check.sh: all requested suites passed"
    ;;
  *)
    echo "usage: tools/check.sh [--plain-only|--sanitize-only|--tsan-only]" >&2
    exit 2
    ;;
esac
