#!/usr/bin/env bash
# Runs the tier-1 test suite twice: a plain RelWithDebInfo build, then an
# ASan+UBSan build (HRF_SANITIZE=address;undefined). Both must be clean.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

run_suite() {  # run_suite <build-dir> <extra cmake args...>
  local dir="$1"; shift
  echo "=== configure $dir ==="
  cmake -B "$dir" -S . -DHRF_BUILD_BENCHES=OFF "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  all|--plain-only)
    run_suite build
    ;;&
  all|--sanitize-only)
    # Sanitized configs keep examples/tools on so the CLI end-to-end test
    # (which needs the hrf_cli target) runs under ASan+UBSan too.
    run_suite build-asan "-DHRF_SANITIZE=address;undefined"
    ;;&
  all|--plain-only|--sanitize-only)
    echo "check.sh: all requested suites passed"
    ;;
  *)
    echo "usage: tools/check.sh [--plain-only|--sanitize-only]" >&2
    exit 2
    ;;
esac
