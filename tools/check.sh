#!/usr/bin/env bash
# Runs the tier-1 test suite three ways: a plain RelWithDebInfo build, an
# ASan+UBSan build (HRF_SANITIZE=address;undefined), and a TSan build
# (HRF_SANITIZE=thread) running the concurrency suites. All must be clean.
#
# The plain build also runs a reload-chaos step: a publisher killed
# mid-write (crash:publish / crash:manifest fault sites) must leave the
# versioned model store recoverable and still serveable — a
# metrics-schema step: a traced serve run must export Prometheus + JSON
# files that hrf_cli --mode metrics-check accepts against the documented
# metric catalogue (docs/observability.md) — and a cluster-chaos step:
# the degraded-mode SLO suite (ctest -L chaos: kill-shard-mid-reload and
# partition scenarios) plus the tools/chaos.sh CLI harness
# (docs/cluster.md). The TSan build also runs the cluster suites.
#
# A qos-chaos step runs the multi-tenant QoS + autoscaler chaos gates
# (noisy-neighbor surge, autoscale waves) under ThreadSanitizer.
#
# A batch-chaos step runs the micro-batching suites (BatchFormer units,
# batched-server integration, freeze:batcher storm) under ThreadSanitizer:
# no lost/duplicated responses and balanced per-tenant QoS counters while
# formed batches are wedged at dispatch (docs/serving.md).
#
# An integrity-chaos step runs the silent-corruption suites (CRC
# cross-check property, scrubber/audit/watchdog units, corrupt:replica +
# hang:worker storm) under ThreadSanitizer: corrupted replicas must be
# detected and rebuilt and hung workers rescued with zero wrong, lost, or
# duplicated answers (docs/robustness.md).
#
# The TSan matrix also covers the third observability pillar: the
# flight-recorder ring's concurrent writers/readers stress, the Monitor's
# tick/snapshot/trigger surfaces, and the SLO engine + windowed registry
# units (docs/observability.md, "Time series, SLOs, and incident
# bundles"). The plain build's CI pipeline (tools/ci.sh) additionally
# gates the incident-bundle schema end to end.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only|--tsan-only|
#                        --cluster-chaos|--qos-chaos|--batch-chaos|
#                        --integrity-chaos]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

run_suite() {  # run_suite <build-dir> <extra cmake args...>
  local dir="$1"; shift
  echo "=== configure $dir ==="
  cmake -B "$dir" -S . -DHRF_BUILD_BENCHES=OFF "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

reload_chaos() {  # reload_chaos <build-dir>
  local cli="$1/tools/hrf_cli"
  local dir; dir="$(mktemp -d)"
  echo "=== reload-chaos ($cli) ==="
  "$cli" --mode gen --dataset susy --samples 1500 --out "$dir/d.hrfd" > /dev/null
  "$cli" --mode train --data "$dir/d.hrfd" --trees 6 --depth 7 --out "$dir/m.hrff" > /dev/null
  "$cli" --mode publish --store "$dir/store" --model "$dir/m.hrff" --layout hier --sd 4 > /dev/null

  # Kill the publisher at both crash sites; neither may corrupt the store.
  local rc site
  for site in crash:publish crash:manifest; do
    rc=0
    "$cli" --mode publish --store "$dir/store" --model "$dir/m.hrff" --layout hier --sd 4 \
           --inject-fault "$site" > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 137 ]; then
      echo "reload-chaos: expected $site to kill the publisher (exit 137), got $rc" >&2
      rm -rf "$dir"; return 1
    fi
  done

  # Recovery: quarantine the partial publish, roll the completed one
  # forward (crash:manifest landed gen.json before dying), keep serving.
  "$cli" --mode store --store "$dir/store" > "$dir/store.log"
  grep -q "current generation: 3" "$dir/store.log" || {
    echo "reload-chaos: store did not recover to the newest complete generation" >&2
    cat "$dir/store.log" >&2; rm -rf "$dir"; return 1; }
  grep -q "quarantined:" "$dir/store.log" || {
    echo "reload-chaos: partial generation was not quarantined" >&2
    cat "$dir/store.log" >&2; rm -rf "$dir"; return 1; }
  "$cli" --mode serve --data "$dir/d.hrfd" --model-store "$dir/store" \
         --backend gpu-sim --variant hybrid --sd 4 \
         --workers 2 --clients 2 --requests 3 --batch 64 > "$dir/serve.log" 2>&1 || {
    echo "reload-chaos: serving from the recovered store failed" >&2
    cat "$dir/serve.log" >&2; rm -rf "$dir"; return 1; }
  grep -q "serve: clean shutdown" "$dir/serve.log" || {
    echo "reload-chaos: recovered store did not serve cleanly" >&2
    cat "$dir/serve.log" >&2; rm -rf "$dir"; return 1; }
  rm -rf "$dir"
  echo "reload-chaos: store survived both crash sites"
}

metrics_schema() {  # metrics_schema <build-dir>
  local cli="$1/tools/hrf_cli"
  local dir; dir="$(mktemp -d)"
  echo "=== metrics-schema ($cli) ==="
  "$cli" --mode gen --dataset susy --samples 1500 --out "$dir/d.hrfd" > /dev/null
  "$cli" --mode train --data "$dir/d.hrfd" --trees 6 --depth 7 --out "$dir/m.hrff" > /dev/null
  "$cli" --mode serve --data "$dir/d.hrfd" --model "$dir/m.hrff" \
         --backend gpu-sim --variant hybrid --sd 4 \
         --trace-sample 1.0 --metrics-out "$dir/metrics.prom" \
         --workers 2 --clients 2 --requests 3 --batch 64 > "$dir/serve.log" 2>&1 || {
    echo "metrics-schema: traced serve run failed" >&2
    cat "$dir/serve.log" >&2; rm -rf "$dir"; return 1; }
  "$cli" --mode metrics-check --metrics "$dir/metrics.prom" || {
    echo "metrics-schema: exported metrics failed the schema check" >&2
    rm -rf "$dir"; return 1; }
  rm -rf "$dir"
  echo "metrics-schema: export matches the documented catalogue"
}

cluster_chaos() {  # cluster_chaos <build-dir>
  echo "=== cluster-chaos ($1) ==="
  # The chaos-labeled gtest suite: kill-shard-mid-rolling-reload,
  # partition-with-heal, noisy-neighbor surge, and autoscale waves,
  # all against the degraded-mode SLOs (success >= 99%, p95 within 2x
  # the healthy baseline).
  ctest --test-dir "$1" --output-on-failure -L chaos
  # The CLI-driven harness exercises the same scenarios end to end
  # (plus freeze/hedging) through hrf_cli --mode cluster.
  tools/chaos.sh "$1/tools/hrf_cli"
  echo "cluster-chaos: degraded-mode SLOs held"
}

qos_chaos() {  # qos_chaos: the QoS/autoscaler chaos gates under TSan
  echo "=== configure build-tsan (qos-chaos) ==="
  cmake -B build-tsan -S . -DHRF_BUILD_BENCHES=OFF "-DHRF_SANITIZE=thread"
  echo "=== build build-tsan (qos-chaos) ==="
  cmake --build build-tsan -j "$JOBS" --target test_qos test_autoscaler test_cluster_chaos
  echo "=== test build-tsan (qos-chaos: quotas, limiter, autoscaler, chaos SLOs) ==="
  OMP_NUM_THREADS=1 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
          -R '(TenantQuotas|AdaptiveLimiter|Autoscaler|ClusterChaos)'
  echo "qos-chaos: QoS + autoscaler SLOs held under TSan"
}

batch_chaos() {  # batch_chaos: the micro-batching gates under TSan
  echo "=== configure build-tsan (batch-chaos) ==="
  cmake -B build-tsan -S . -DHRF_BUILD_BENCHES=OFF "-DHRF_SANITIZE=thread"
  echo "=== build build-tsan (batch-chaos) ==="
  cmake --build build-tsan -j "$JOBS" --target test_batcher test_batch_chaos
  echo "=== test build-tsan (batch-chaos: former units, batched serving, freeze storm) ==="
  OMP_NUM_THREADS=1 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
          -R '(BackendBatchGranularity|BatchOptions|BatchFormer|BatchedServer|BatchChaos)'
  echo "batch-chaos: no lost or duplicated responses under freeze:batcher"
}

integrity_chaos() {  # integrity_chaos: the silent-corruption gates under TSan
  echo "=== configure build-tsan (integrity-chaos) ==="
  cmake -B build-tsan -S . -DHRF_BUILD_BENCHES=OFF "-DHRF_SANITIZE=thread"
  echo "=== build build-tsan (integrity-chaos) ==="
  cmake --build build-tsan -j "$JOBS" --target test_integrity test_integrity_chaos
  echo "=== test build-tsan (integrity-chaos: CRC cross-check, scrubber, audits, watchdog, storm) ==="
  OMP_NUM_THREADS=1 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
          -R '(IntegrityCrc|IntegrityCorrupt|IntegrityServer|IntegrityChaos)'
  echo "integrity-chaos: corruption detected and repaired, hung workers rescued, under TSan"
}

case "$MODE" in
  all|--plain-only)
    run_suite build
    reload_chaos build
    metrics_schema build
    ;;&
  all|--plain-only|--cluster-chaos)
    if [ "$MODE" = --cluster-chaos ]; then
      cmake -B build -S . -DHRF_BUILD_BENCHES=OFF
      cmake --build build -j "$JOBS" --target hrf_cli test_cluster_chaos
    fi
    cluster_chaos build
    ;;&
  all|--sanitize-only)
    # Sanitized configs keep examples/tools on so the CLI end-to-end test
    # (which needs the hrf_cli target) runs under ASan+UBSan too.
    run_suite build-asan "-DHRF_SANITIZE=address;undefined"
    ;;&
  all|--tsan-only)
    # TSan build runs only the concurrency suites (serving layer, fault
    # injector, counter registry): that is where the data races live, and
    # libgomp is not TSan-instrumented, so the OpenMP-parallel numeric
    # suites would drown the signal in false positives. For the same
    # reason the tests themselves run with OpenMP forced sequential.
    echo "=== configure build-tsan ==="
    cmake -B build-tsan -S . -DHRF_BUILD_BENCHES=OFF "-DHRF_SANITIZE=thread"
    echo "=== build build-tsan ==="
    cmake --build build-tsan -j "$JOBS" --target test_server test_circuit_breaker test_fault test_metrics test_histogram test_model_store test_reload test_trace test_obs test_cluster test_qos test_autoscaler test_cluster_chaos test_batcher test_batch_chaos test_integrity test_integrity_chaos test_flight_recorder test_monitor test_slo test_timeseries
    echo "=== test build-tsan (concurrency suites) ==="
    OMP_NUM_THREADS=1 TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
            -R '(ForestServer|CircuitBreaker|FaultInjector|CounterRegistry|LatencyHistogram|HistogramDelta|ModelStore|ModelReload|Tracer|Span\.|Trace\.|RollupRegistry|BackendRollup|Cluster|TenantQuotas|AdaptiveLimiter|Autoscaler|BackendBatchGranularity|BatchOptions|BatchFormer|BatchedServer|BatchChaos|IntegrityCrc|IntegrityCorrupt|IntegrityServer|IntegrityChaos|FlightRecorder|MonitorTest|SloEngine|TimeSeriesRegistry)'
    ;;&
  all|--qos-chaos)
    if [ "$MODE" = --qos-chaos ]; then
      qos_chaos
    fi
    ;;&
  all|--batch-chaos)
    if [ "$MODE" = --batch-chaos ]; then
      batch_chaos
    fi
    ;;&
  all|--integrity-chaos)
    if [ "$MODE" = --integrity-chaos ]; then
      integrity_chaos
    fi
    ;;&
  all|--plain-only|--sanitize-only|--tsan-only|--cluster-chaos|--qos-chaos|--batch-chaos|--integrity-chaos)
    echo "check.sh: all requested suites passed"
    ;;
  *)
    echo "usage: tools/check.sh [--plain-only|--sanitize-only|--tsan-only|--cluster-chaos|--qos-chaos|--batch-chaos|--integrity-chaos]" >&2
    exit 2
    ;;
esac
