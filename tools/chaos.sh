#!/usr/bin/env bash
# Cluster chaos harness (docs/cluster.md): drives `hrf_cli --mode cluster`
# through the degraded-mode scenarios and holds every run to the SLOs —
# aggregate success rate >= 99% and router p95 within 2x the healthy
# baseline measured first on the same host:
#
#   baseline        healthy 4-shard fleet (also sets the p95 reference)
#   kill            a shard killed mid-traffic; failover absorbs it
#   freeze          a shard worker wedged mid-dispatch (freeze:shard fault
#                   site); the hedge covers the stalled request
#   partition       a shard cut off from the router, healed mid-run; the
#                   probe loop re-admits it
#   kill-mid-reload a staged rolling reload with a shard killed mid-wave;
#                   the wave must halt and roll the promoted prefix back
#
# Usage: tools/chaos.sh <path-to-hrf_cli>  (tools/check.sh --cluster-chaos
# runs it against the plain build automatically)
set -euo pipefail

CLI="${1:?usage: tools/chaos.sh <path-to-hrf_cli>}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

run() {  # run <name> <slo-p95-ms> <extra cli args...>
  local name="$1" slo_p95="$2"; shift 2
  echo "=== chaos: $name ==="
  "$CLI" --mode cluster --data "$DIR/d.hrfd" \
         --shards 4 --clients 4 --requests 30 --batch 128 \
         --slo-success 0.99 --slo-p95-ms "$slo_p95" \
         "$@" > "$DIR/$name.log" 2>&1 || {
    echo "chaos: $name FAILED" >&2
    cat "$DIR/$name.log" >&2
    return 1
  }
  grep -q "cluster: clean shutdown" "$DIR/$name.log" || {
    echo "chaos: $name did not shut down cleanly" >&2
    cat "$DIR/$name.log" >&2
    return 1
  }
  grep "cluster summary:" "$DIR/$name.log"
}

"$CLI" --mode gen --dataset susy --samples 2000 --out "$DIR/d.hrfd" > /dev/null
"$CLI" --mode train --data "$DIR/d.hrfd" --trees 8 --depth 8 --out "$DIR/m.hrff" > /dev/null
"$CLI" --mode publish --store "$DIR/store" --model "$DIR/m.hrff" \
       --layout hier --sd 4 --note gen1 > /dev/null

# Healthy baseline: perfect success, and its p95 anchors the degraded-mode
# latency SLO (acceptance: chaos p95 within 2x healthy, floored at 10ms so
# a sub-millisecond baseline doesn't turn scheduler jitter into a breach).
run baseline 0 --model "$DIR/m.hrff"
grep -q "success=1.0000" "$DIR/baseline.log" || {
  echo "chaos: baseline must have perfect success" >&2; exit 1; }
P95_MS="$(sed -n 's/.* p95_ms=\([0-9.]*\).*/\1/p' "$DIR/baseline.log")"
SLO_P95="$(awk -v p="$P95_MS" 'BEGIN { v = 2 * p; if (v < 10) v = 10; printf "%.3f", v }')"
echo "chaos: healthy p95 ${P95_MS} ms -> degraded-mode SLO ${SLO_P95} ms"

run kill "$SLO_P95" --model "$DIR/m.hrff" --kill-shard 1 --chaos-delay-ms 5
grep -q "shard 1: down" "$DIR/kill.log" || {
  echo "chaos: killed shard not reported down" >&2; exit 1; }

# Freeze is gated on success + hedging, not the 2x p95 bound: a hedged
# request's floor is the hedge delay itself, which can exceed 2x a
# sub-millisecond healthy baseline by design.
run freeze 0 --model "$DIR/m.hrff" \
    --inject-fault freeze:shard:2 --hedge-ms 15
grep -q "hedged=[1-9]" "$DIR/freeze.log" || {
  echo "chaos: frozen shard never triggered a hedge" >&2; exit 1; }

run partition "$SLO_P95" --model "$DIR/m.hrff" \
    --partition-shard 2 --chaos-delay-ms 5 --heal-ms 100
grep -q "chaos: healed shard 2" "$DIR/partition.log" || {
  echo "chaos: partition was never healed" >&2; exit 1; }

run kill-mid-reload "$SLO_P95" --model-store "$DIR/store" \
    --backend gpu-sim --variant hybrid --sd 4 \
    --rolling-reload --publish-live "$DIR/m.hrff" --canary-requests 1 \
    --kill-shard 3 --chaos-delay-ms 2
grep -q "HALTED" "$DIR/kill-mid-reload.log" || {
  echo "chaos: killed shard did not halt the rolling-reload wave" >&2; exit 1; }

echo "chaos.sh: all scenarios held the degraded-mode SLOs"
