#!/usr/bin/env bash
# Cluster chaos harness (docs/cluster.md): drives `hrf_cli --mode cluster`
# through the degraded-mode scenarios and holds every run to the SLOs —
# success rate >= 99% (per victim tenant when a surge is active) and
# router p95 within 2x the healthy baseline measured first on the same
# host:
#
#   baseline        healthy 4-shard fleet (also sets the p95 reference)
#   kill            a shard killed mid-traffic; failover absorbs it
#   kill-slo        the same kill with the SLO burn-rate engine armed: the
#                   shard-scope alert must fire and the incident bundle it
#                   drops must pass `--mode incident` schema validation
#   freeze          a shard worker wedged mid-dispatch (freeze:shard fault
#                   site); the hedge covers the stalled request
#   partition       a shard cut off from the router, healed mid-run; the
#                   probe loop re-admits it
#   kill-mid-reload a staged rolling reload with a shard killed mid-wave;
#                   the wave must halt and roll the promoted prefix back
#   noisy-neighbor  one tenant surges to 10x its rate (surge:tenant site);
#                   per-tenant quotas shed it with QuotaError while the
#                   victim tenants keep their reserved shares
#   scale-wave      the autoscaler grows the fleet under latency pressure
#                   and shrinks it back, with zero client failures
#   scale-wave-kill the same wave with a shard killed mid-scale-up;
#                   failover + probes keep the victims inside the SLOs
#   scrub-storm     corrupt:replica repeatedly poisons live replicas
#                   across the fleet; CRC scrubbing + shadow audits
#                   detect and rebuild them with zero wrong answers
#   hung-worker     hang:worker wedges dispatches past the watchdog
#                   timeout; every request is rescued and the hung
#                   threads are replaced
#
# Every scenario runs even when an earlier one fails; each one's exit
# code is reported individually and the harness exits nonzero if any
# scenario failed.
#
# Usage: tools/chaos.sh <path-to-hrf_cli>  (tools/check.sh --cluster-chaos
# runs it against the plain build automatically)
set -euo pipefail

CLI="${1:?usage: tools/chaos.sh <path-to-hrf_cli>}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

run() {  # run <name> <slo-p95-ms> <extra cli args...>; overridable via
         # SHARDS/CLIENTS/REQUESTS env (e.g. `SHARDS=2 run scale-wave ...`)
  local name="$1" slo_p95="$2"; shift 2
  echo "=== chaos: $name ==="
  "$CLI" --mode cluster --data "$DIR/d.hrfd" \
         --shards "${SHARDS:-4}" --clients "${CLIENTS:-4}" \
         --requests "${REQUESTS:-30}" --batch 128 \
         --slo-success 0.99 --slo-p95-ms "$slo_p95" \
         "$@" > "$DIR/$name.log" 2>&1 || {
    echo "chaos: $name FAILED" >&2
    cat "$DIR/$name.log" >&2
    return 1
  }
  grep -q "cluster: clean shutdown" "$DIR/$name.log" || {
    echo "chaos: $name did not shut down cleanly" >&2
    cat "$DIR/$name.log" >&2
    return 1
  }
  grep "cluster summary:" "$DIR/$name.log"
}

expect() {  # expect <scenario> <pattern> <message>
  grep -q "$2" "$DIR/$1.log" || { echo "chaos: $3" >&2; return 1; }
}

scenario_kill() {
  run kill "$SLO_P95" --model "$DIR/m.hrff" --kill-shard 1 --chaos-delay-ms 5 &&
  expect kill "shard 1: down" "killed shard not reported down"
}

# The kill scenario with the SLO burn-rate engine armed: failover keeps
# client-visible success perfect, so only the shard-scope objective can
# page on the dead shard. The alert must fire, the monitor must drop an
# incident bundle, and `--mode incident` must accept the bundle from
# disk with the breaker transition and the alert both on the event tape.
# Traffic is sized to outlast the kill: breaker events only exist if
# requests (or probes) hit the corpse after it died.
scenario_kill_slo() {
  REQUESTS=400 run kill-slo "$SLO_P95" --model "$DIR/m.hrff" \
      --kill-shard 1 --chaos-delay-ms 20 \
      --slo-target-success 0.999 --obs-interval-ms 20 \
      --slo-window-fast-ms 200 --slo-window-slow-ms 1000 \
      --slo-burn-fast 10 --slo-burn-slow 2 \
      --incident-dir "$DIR/incidents" &&
  expect kill-slo "slo alert fired: objective=success_rate scope=shard:1" \
      "the dead shard never fired its SLO alert" &&
  expect kill-slo "incident bundle written:" "no incident bundle was written" &&
  "$CLI" --mode incident --bundle "$DIR/incidents/incident-000000.json" \
      > "$DIR/kill-slo-check.log" 2>&1 || {
    echo "chaos: incident bundle failed schema validation" >&2
    cat "$DIR/kill-slo-check.log" >&2
    return 1
  }
  grep -q "incident-check: .* ok" "$DIR/kill-slo-check.log" || {
    echo "chaos: incident-check did not report ok" >&2
    cat "$DIR/kill-slo-check.log" >&2
    return 1
  }
  grep -q "event: \[breaker\]" "$DIR/kill-slo-check.log" || {
    echo "chaos: bundle is missing the breaker transition event" >&2
    cat "$DIR/kill-slo-check.log" >&2
    return 1
  }
  grep -q "event: \[alert\] slo_fired" "$DIR/kill-slo-check.log" || {
    echo "chaos: bundle is missing the slo_fired alert event" >&2
    cat "$DIR/kill-slo-check.log" >&2
    return 1
  }
}

# Freeze is gated on success + hedging, not the 2x p95 bound: a hedged
# request's floor is the hedge delay itself, which can exceed 2x a
# sub-millisecond healthy baseline by design.
scenario_freeze() {
  run freeze 0 --model "$DIR/m.hrff" \
      --inject-fault freeze:shard:2 --hedge-ms 15 &&
  expect freeze "hedged=[1-9]" "frozen shard never triggered a hedge"
}

scenario_partition() {
  run partition "$SLO_P95" --model "$DIR/m.hrff" \
      --partition-shard 2 --chaos-delay-ms 5 --heal-ms 100 &&
  expect partition "chaos: healed shard 2" "partition was never healed"
}

scenario_kill_mid_reload() {
  run kill-mid-reload "$SLO_P95" --model-store "$DIR/store" \
      --backend gpu-sim --variant hybrid --sd 4 \
      --rolling-reload --publish-live "$DIR/m.hrff" --canary-requests 1 \
      --kill-shard 3 --chaos-delay-ms 2 &&
  expect kill-mid-reload "HALTED" "killed shard did not halt the rolling-reload wave"
}

# The noisy neighbor: the surger sends 10x the victims' rate and each of
# its admitted requests hogs a worker for 1 ms; its queue share is one
# slot per shard, so admission (QuotaError), not deadlines, must absorb
# the surge while both victims keep perfect success (the CLI gates each
# victim tenant's success rate on its own).
scenario_noisy_neighbor() {
  CLIENTS=2 run noisy-neighbor "$SLO_P95" --model "$DIR/m.hrff" \
      --workers 2 --queue-cap 5 \
      --tenants victim-a,victim-b,surger --tenant-weights 2,2,1 \
      --surge surger --surge-factor 10 --surge-ms 1 &&
  expect noisy-neighbor "quota_shed=[1-9]" "the surge was never quota-shed"
}

# Autoscale wave: aggressive thresholds force a scale-up under the client
# load; the run must end clean (zero failed requests through every
# resize) with at least one scale-up on the books.
scenario_scale_wave() {
  SHARDS=2 CLIENTS=8 REQUESTS=300 run scale-wave "$SLO_P95" \
      --model "$DIR/m.hrff" --workers 1 --queue-cap 64 \
      --autoscale --autoscale-min 1 --autoscale-max 4 \
      --autoscale-interval-ms 10 --autoscale-up-p95-ms 0.2 \
      --autoscale-down-p95-ms 0.01 &&
  expect scale-wave "scale_ups=[1-9]" "the autoscaler never scaled up" &&
  expect scale-wave " failed=0 " "a resize produced client-visible failures"
}

scenario_scale_wave_kill() {
  SHARDS=2 CLIENTS=8 REQUESTS=300 run scale-wave-kill "$SLO_P95" \
      --model "$DIR/m.hrff" --workers 1 --queue-cap 64 \
      --autoscale --autoscale-min 1 --autoscale-max 4 \
      --autoscale-interval-ms 10 --autoscale-up-p95-ms 0.2 \
      --autoscale-down-p95-ms 0.01 \
      --kill-shard 1 --chaos-delay-ms 20 &&
  expect scale-wave-kill "scale_ups=[1-9]" "the autoscaler never scaled up" &&
  expect scale-wave-kill "shard 1: down" "killed shard not reported down"
}

# Scrub storm: gated on success (audits serve the oracle answer on any
# divergence, so a wrong prediction is impossible), not the 2x p95 bound —
# auditing every request reshapes the latency profile by design. The
# fleet must actually detect and rebuild poisoned replicas.
scenario_scrub_storm() {
  run scrub-storm 0 --model "$DIR/m.hrff" \
      --inject-fault corrupt:replica:6 \
      --scrub-interval-ms 5 --audit-sample 1 &&
  expect scrub-storm "replica_repairs=[1-9]" "no corrupted replica was ever repaired"
}

# Hung workers: same success-only gate (a rescue's floor is the watchdog
# timeout, which dwarfs a sub-millisecond healthy p95). Every wedged
# dispatch must be answered by the watchdog and the thread replaced.
scenario_hung_worker() {
  run hung-worker 0 --model "$DIR/m.hrff" \
      --inject-fault hang:worker:3 --hang-timeout-ms 20 &&
  expect hung-worker "worker_restarts=[1-9]" "no hung worker was ever replaced"
}

"$CLI" --mode gen --dataset susy --samples 2000 --out "$DIR/d.hrfd" > /dev/null
"$CLI" --mode train --data "$DIR/d.hrfd" --trees 8 --depth 8 --out "$DIR/m.hrff" > /dev/null
"$CLI" --mode publish --store "$DIR/store" --model "$DIR/m.hrff" \
       --layout hier --sd 4 --note gen1 > /dev/null

# Healthy baseline: perfect success, and its p95 anchors the degraded-mode
# latency SLO (acceptance: chaos p95 within 2x healthy, floored at 10ms so
# a sub-millisecond baseline doesn't turn scheduler jitter into a breach).
# The baseline is load-bearing for every scenario, so it alone is fatal.
run baseline 0 --model "$DIR/m.hrff"
grep -q "success=1.0000" "$DIR/baseline.log" || {
  echo "chaos: baseline must have perfect success" >&2; exit 1; }
P95_MS="$(sed -n 's/.* p95_ms=\([0-9.]*\).*/\1/p' "$DIR/baseline.log")"
SLO_P95="$(awk -v p="$P95_MS" 'BEGIN { v = 2 * p; if (v < 10) v = 10; printf "%.3f", v }')"
echo "chaos: healthy p95 ${P95_MS} ms -> degraded-mode SLO ${SLO_P95} ms"

# Run every scenario even after a failure; report each exit code and
# propagate the worst one.
OVERALL=0
for sc in kill kill-slo freeze partition kill-mid-reload noisy-neighbor \
          scale-wave scale-wave-kill scrub-storm hung-worker; do
  rc=0
  "scenario_${sc//-/_}" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "chaos: $sc ok"
  else
    echo "chaos: $sc FAILED (exit $rc)" >&2
    OVERALL=1
  fi
done

if [ "$OVERALL" -ne 0 ]; then
  echo "chaos.sh: scenario failures above" >&2
  exit "$OVERALL"
fi
echo "chaos.sh: all scenarios held the degraded-mode SLOs"
