// hrf_cli — command-line front end for the library.
//
//   hrf_cli --mode gen      --dataset susy --samples 100000 --out data.hrfd
//   hrf_cli --mode train    --data data.hrfd --trees 100 --depth 20 --out model.hrff
//   hrf_cli --mode info     --model model.hrff
//   hrf_cli --mode predict  --model model.hrff --data data.hrfd
//                           --backend gpu-sim --variant hybrid --sd 8 --rsd 10
//   hrf_cli --mode layout   --model model.hrff
//   hrf_cli --mode compile  --model model.hrff --layout hier --sd 8 --rsd 10
//                           --out layout.hrfl
//
// `gen` synthesizes a dataset; `train` fits a forest (training uses the
// train half of --data when --split is set, else all rows); `predict`
// classifies and reports accuracy + device counters; `info` prints model
// statistics; `layout` sweeps the hierarchical layout tuning grid;
// `compile` serializes an inference layout blob that `predict
// --layout-blob` loads instead of rebuilding (offline model compilation).
//
// Robustness tooling (docs/robustness.md): `--inject-fault spec[,spec]`
// arms the deterministic fault injector (e.g. resource:gpu, bitflip:layout)
// and predict degrades along the fallback chain unless --no-fallback is
// given; every degradation step is printed. At the serving layer,
// --scrub-interval-ms / --audit-sample / --hang-timeout-ms turn on the
// integrity monitor (replica CRC scrubbing, sampled CPU-oracle shadow
// audits, worker watchdog); a self-heal summary prints on drain.
//
// Serving (docs/serving.md): `serve` stands up a ForestServer (worker
// pool, bounded queue, deadlines, retry, circuit breaker) and drives it
// with a synthetic multi-threaded client load, then drains gracefully and
// prints the server's counters plus per-stage latency percentiles
// (queue-wait / execute / end-to-end histograms). With --inject-fault
// resource:gpu:-1 and --no-fallback this demonstrates the breaker
// tripping and traffic being served by the CPU-native fallback replicas.
//
// Model lifecycle (docs/model-lifecycle.md): `publish` writes a model +
// compiled layout into a versioned on-disk store as a new checksummed
// generation; `store` prints the store's state (current generation,
// complete generations, quarantined damage). `serve --model-store DIR`
// serves the store's current generation, and with `--watch-ms N` a
// watcher thread hot-reloads new generations with shadow validation,
// canary rollout, and automatic rollback — `--publish-live` /
// `--publish-bad` orchestrate the full zero-downtime demo (publish a good
// generation mid-traffic, then a behaviorally-wrong one that must be
// rejected while the old model keeps serving).
//
// Benchmarking (docs/benchmarking.md): `bench` sweeps {variant x backend
// x batch} over a synthetic forest, writes the schema-versioned
// BENCH_hrf.json, and `bench --compare old.json` exits nonzero when any
// case's p95 ns/query regressed past --tolerance — the perf gate every
// optimization PR runs against the recorded baseline.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "core/hrf.hpp"
#include "forest/importance.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/monitor.hpp"
#include "serve/model_store.hpp"
#include "util/json.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace {

using namespace hrf;

Dataset make_named_dataset(const std::string& name, std::size_t samples) {
  if (name == "covertype") return make_covertype_like(samples);
  if (name == "susy") return make_susy_like(samples);
  if (name == "higgs") return make_higgs_like(samples);
  throw ConfigError("unknown --dataset '" + name + "' (covertype|susy|higgs)");
}

// One source of truth for the names: the bench harness maps them both
// ways (CLI flags and the BENCH_hrf.json case keys).
Backend parse_backend(const std::string& name) { return bench::backend_from_name(name); }
Variant parse_variant(const std::string& name) { return bench::variant_from_name(name); }

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Parses --tenants a,b,c [--tenant-weights 2,2,1] into per-tenant
// admission quotas (docs/cluster.md). Returns the tenant names in order;
// empty means quotas stay off and all traffic is anonymous.
std::vector<std::string> parse_tenant_quotas(const CliArgs& args, serve::ServerOptions& sopt) {
  const std::string list = args.get("tenants", "");
  if (list.empty()) return {};
  const std::vector<std::string> names = split_commas(list);
  std::vector<std::string> weights;
  const std::string wlist = args.get("tenant-weights", "");
  if (!wlist.empty()) weights = split_commas(wlist);
  if (!weights.empty() && weights.size() != names.size()) {
    throw ConfigError("--tenant-weights wants exactly one weight per --tenants entry");
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    serve::TenantQuota q;
    q.name = names[i];
    q.weight = weights.empty() ? 1.0 : std::stod(weights[i]);
    sopt.quotas.tenants.push_back(q);
  }
  return names;
}

int mode_gen(const CliArgs& args) {
  const Dataset ds = make_named_dataset(args.get("dataset", "susy"),
                                        static_cast<std::size_t>(args.get_int("samples", 100'000)));
  const std::string out = args.get("out", "data.hrfd");
  ds.save(out);
  std::printf("wrote %s: %zu samples x %zu features, %d classes, %.1f%% class 1\n", out.c_str(),
              ds.num_samples(), ds.num_features(), ds.num_classes(),
              100 * ds.positive_fraction());
  return 0;
}

int mode_train(const CliArgs& args) {
  const Dataset data = Dataset::load(args.get("data", "data.hrfd"));
  const Dataset train = args.get_flag("split") ? data.split().first : data;
  TrainConfig cfg;
  cfg.num_trees = static_cast<int>(args.get_int("trees", 100));
  cfg.max_depth = static_cast<int>(args.get_int("depth", 20));
  cfg.features_per_split = static_cast<int>(args.get_int("features-per-split", 0));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  WallTimer timer;
  const Forest forest = train_forest(train, cfg);
  const double train_s = timer.seconds();
  const std::string out = args.get("out", "model.hrff");
  forest.save(out);
  const ForestStats fs = forest.stats();
  std::printf("trained %zu trees on %zu samples in %.1fs\n", fs.tree_count, train.num_samples(),
              train_s);
  std::printf("wrote %s: %zu nodes, max depth %d, mean leaf depth %.1f\n", out.c_str(),
              fs.total_nodes, fs.max_depth, fs.mean_leaf_depth);
  if (args.get_flag("split")) {
    const Dataset test = data.split().second;
    std::printf("holdout accuracy: %.2f%%\n",
                100 * forest.accuracy(test.features(), test.labels()));
  }
  return 0;
}

int mode_info(const CliArgs& args) {
  const Forest forest = Forest::load(args.get("model", "model.hrff"));
  const ForestStats fs = forest.stats();
  Table t({"property", "value"});
  t.row().cell("trees").cell(static_cast<std::uint64_t>(fs.tree_count));
  t.row().cell("features").cell(static_cast<std::uint64_t>(forest.num_features()));
  t.row().cell("classes").cell(std::int64_t{forest.num_classes()});
  t.row().cell("total nodes").cell(static_cast<std::uint64_t>(fs.total_nodes));
  t.row().cell("total leaves").cell(static_cast<std::uint64_t>(fs.total_leaves));
  t.row().cell("max depth").cell(std::int64_t{fs.max_depth});
  t.row().cell("mean tree depth").cell(fs.mean_depth, 1);
  t.row().cell("mean leaf depth").cell(fs.mean_leaf_depth, 1);
  t.row().cell("csr bytes").cell(static_cast<std::uint64_t>(CsrForest::build(forest).memory_bytes()));
  print_table(std::cout, "Model " + args.get("model", "model.hrff"), t);

  const auto importances = feature_importance(forest);
  Table imp({"rank", "feature", "importance"});
  int rank = 1;
  for (std::size_t f : top_features(forest, 10)) {
    imp.row().cell(std::int64_t{rank++}).cell(static_cast<std::uint64_t>(f)).cell(
        importances[f], 4);
  }
  print_table(std::cout, "Top feature importances (structural proxy)", imp);
  return 0;
}

int mode_layout(const CliArgs& args) {
  const Forest forest = Forest::load(args.get("model", "model.hrff"));
  const CsrForest csr = CsrForest::build(forest);
  Table t({"SD", "RSD", "stored nodes", "padding", "subtrees", "bytes vs CSR"});
  for (int sd : args.get_int_list("sd", {4, 6, 8})) {
    for (int rsd : args.get_int_list("rsd", {0, 10, 12})) {
      if (rsd != 0 && rsd <= sd) continue;
      HierConfig cfg;
      cfg.subtree_depth = sd;
      cfg.root_subtree_depth = rsd;
      const HierarchicalForest h = HierarchicalForest::build(forest, cfg);
      const HierStats s = h.stats();
      t.row()
          .cell(std::int64_t{sd})
          .cell(std::int64_t{cfg.effective_root_depth()})
          .cell(static_cast<std::uint64_t>(s.stored_nodes))
          .cell(s.padding_ratio, 3)
          .cell(static_cast<std::uint64_t>(s.num_subtrees))
          .cell(static_cast<double>(h.memory_bytes()) / csr.memory_bytes(), 2);
    }
  }
  print_table(std::cout, "Hierarchical layout grid", t);
  return 0;
}

int mode_compile(const CliArgs& args) {
  const Forest forest = Forest::load(args.get("model", "model.hrff"));
  const std::string kind = args.get("layout", "hier");
  const std::string out = args.get("out", "layout.hrfl");
  if (kind == "csr") {
    const CsrForest csr = CsrForest::build(forest);
    save_csr(csr, out);
    std::printf("compiled csr layout to %s: %zu nodes, %zu bytes\n", out.c_str(),
                csr.num_nodes(), csr.memory_bytes());
  } else if (kind == "hier") {
    HierConfig cfg;
    cfg.subtree_depth = static_cast<int>(args.get_int("sd", 8));
    cfg.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));
    const HierarchicalForest h = HierarchicalForest::build(forest, cfg);
    save_hierarchical(h, out);
    const HierStats s = h.stats();
    std::printf("compiled hierarchical layout to %s: %zu subtrees, %zu stored nodes, %zu bytes\n",
                out.c_str(), s.num_subtrees, s.stored_nodes, h.memory_bytes());
  } else {
    throw ConfigError("unknown --layout '" + kind + "' (csr|hier)");
  }
  return 0;
}

Classifier make_predict_classifier(const CliArgs& args, const ClassifierOptions& opt) {
  const std::string model = args.get("model", "model.hrff");
  const std::string blob = args.get("layout-blob", "");
  if (blob.empty()) return Classifier::load(model, opt);
  Forest forest = Forest::load(model);
  if (peek_layout_kind(blob) == "csr") {
    return Classifier(std::move(forest), load_csr(blob), opt);
  }
  return Classifier(std::move(forest), load_hierarchical(blob), opt);
}

int mode_predict(const CliArgs& args) {
  const Dataset data = Dataset::load(args.get("data", "data.hrfd"));
  ClassifierOptions opt;
  opt.backend = parse_backend(args.get("backend", "cpu"));
  opt.variant = parse_variant(args.get("variant", "independent"));
  opt.layout.subtree_depth = static_cast<int>(args.get_int("sd", 8));
  opt.layout.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));
  opt.fallback.enabled = !args.get_flag("no-fallback");
  const Classifier clf = make_predict_classifier(args, opt);
  const RunReport r = clf.classify(data);

  std::printf("%zu queries on %s/%s: %.5f %s\n", data.num_samples(), to_string(opt.backend),
              to_string(opt.variant), r.seconds, r.simulated ? "simulated-s" : "wall-s");
  for (const std::string& step : r.degradations) std::printf("degraded: %s\n", step.c_str());
  std::printf("accuracy vs dataset labels: %.2f%%\n", 100 * r.accuracy(data.labels()));
  const ConfusionMatrix cm(r.predictions, data.labels(), data.num_classes());
  std::printf("%s", cm.to_markdown().c_str());
  if (r.gpu_counters) {
    std::printf("gpu: %llu load requests, %.1f transactions/request, branch eff %.3f, "
                "limiter %s\n",
                static_cast<unsigned long long>(r.gpu_counters->gld_requests),
                r.gpu_counters->transactions_per_request(), r.gpu_counters->branch_efficiency(),
                r.gpu_timing->limiter.c_str());
  }
  if (r.fpga_report) {
    std::printf("fpga: stall %.1f%%, II %s, clock %.0f MHz, limiter %s\n",
                r.fpga_report->stall_pct, r.fpga_report->ii_desc.c_str(),
                r.fpga_report->clock_mhz, r.fpga_report->limiter.c_str());
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    Table t({"query", "prediction"});
    for (std::size_t i = 0; i < r.predictions.size(); ++i) {
      t.row().cell(static_cast<std::uint64_t>(i)).cell(std::int64_t{r.predictions[i]});
    }
    t.write_csv(out);
    std::printf("predictions written to %s\n", out.c_str());
  }
  return 0;
}

// Benchmark-regression harness (docs/benchmarking.md): sweeps every valid
// {variant x backend x batch} combination over a synthetic forest, writes
// the schema-versioned BENCH_hrf.json, and with --compare gates the fresh
// run against a recorded baseline (exit 1 on >tolerance p95 growth).
int mode_bench(const CliArgs& args) {
  bench::SweepOptions opt;
  opt.variants.clear();
  for (const std::string& name :
       split_commas(args.get("variants", "csr,independent,collaborative,hybrid"))) {
    opt.variants.push_back(parse_variant(name));
  }
  opt.backends.clear();
  for (const std::string& name : split_commas(args.get("backends", "cpu,gpu-sim,fpga-sim"))) {
    opt.backends.push_back(parse_backend(name));
  }
  opt.batch_sizes.clear();
  for (const int b : args.get_int_list("batches", {64, 256})) {
    opt.batch_sizes.push_back(static_cast<std::size_t>(b));
  }
  opt.warmup_runs = static_cast<int>(args.get_int("warmup", 1));
  opt.repeat_runs = static_cast<int>(args.get_int("repeats", 5));
  opt.forest.num_trees = static_cast<int>(args.get_int("trees", 20));
  opt.forest.max_depth = static_cast<int>(args.get_int("depth", 10));
  opt.forest.num_features = static_cast<int>(args.get_int("features", 16));
  opt.forest.seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  opt.layout.subtree_depth = static_cast<int>(args.get_int("sd", 6));
  opt.layout.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));

  bench::BenchReport report = bench::run_sweep(opt);

  if (args.get_flag("trace-overhead")) {
    // The overhead case keeps its own fixed forest/batch defaults (rather
    // than inheriting the sweep's) so the ratio is comparable across runs:
    // on a too-small workload one histogram bucket already reads as >5%.
    bench::TraceOverheadOptions topt;
    topt.requests = static_cast<std::size_t>(args.get_int("trace-requests", 200));
    topt.query_seed = opt.query_seed;
    report.trace_overhead = bench::measure_trace_overhead(topt);
    std::printf("trace overhead: serve p95 %.0f ns (sampling 0.0) -> %.0f ns (sampling 1.0), "
                "ratio %.3f\n",
                report.trace_overhead->p95_off_ns, report.trace_overhead->p95_on_ns,
                report.trace_overhead->ratio);
  }

  if (args.get_flag("audit-bench")) {
    bench::AuditOverheadOptions aopt;
    aopt.requests = static_cast<std::size_t>(args.get_int("audit-requests", 200));
    aopt.sample_every = static_cast<std::size_t>(args.get_int("audit-sample-every", 32));
    aopt.query_seed = opt.query_seed;
    report.audit_overhead = bench::measure_audit_overhead(aopt);
    std::printf("audit overhead: serve p95 %.0f ns (audits off) -> %.0f ns (every %zuth "
                "request), ratio %.3f\n",
                report.audit_overhead->p95_off_ns, report.audit_overhead->p95_on_ns,
                report.audit_overhead->sample_every, report.audit_overhead->ratio);
  }

  if (args.get_flag("obs-bench")) {
    bench::ObsOverheadOptions oopt;
    oopt.requests = static_cast<std::size_t>(args.get_int("obs-requests", 200));
    oopt.interval_seconds = args.get_double("obs-interval-ms", 250.0) / 1e3;
    oopt.query_seed = opt.query_seed;
    report.obs_overhead = bench::measure_obs_overhead(oopt);
    std::printf("obs overhead: serve p95 %.0f ns (monitor off) -> %.0f ns (windows + SLO "
                "engine every %.0f ms), ratio %.3f\n",
                report.obs_overhead->p95_off_ns, report.obs_overhead->p95_on_ns,
                report.obs_overhead->interval_seconds * 1e3, report.obs_overhead->ratio);
  }

  if (args.get_flag("cluster-bench")) {
    bench::ClusterBenchOptions copt;
    copt.shards = static_cast<std::size_t>(args.get_int("shards", 4));
    copt.requests = static_cast<std::size_t>(args.get_int("requests", 120));
    copt.clients = static_cast<std::size_t>(args.get_int("clients", 4));
    copt.query_seed = opt.query_seed;
    report.cluster = bench::measure_cluster(copt);
    std::printf("cluster bench: %zu shards, %zu requests -> p95 %.0f ns, %.0f qps\n",
                report.cluster->shards, report.cluster->requests, report.cluster->p95_ns,
                report.cluster->qps);
  }

  if (args.get_flag("noisy-bench")) {
    bench::NoisyNeighborOptions nopt;
    nopt.shards = static_cast<std::size_t>(args.get_int("shards", 4));
    nopt.requests = static_cast<std::size_t>(args.get_int("requests", 120));
    nopt.query_seed = opt.query_seed;
    report.noisy = bench::measure_noisy_neighbor(nopt);
    std::printf("noisy bench: %zu shards, %zu victim requests under surge -> "
                "victim p95 %.0f ns, success %.4f, surger shed %llu, %.0f qps\n",
                report.noisy->shards, report.noisy->requests, report.noisy->victim_p95_ns,
                report.noisy->victim_success,
                static_cast<unsigned long long>(report.noisy->surger_shed),
                report.noisy->victim_qps);
  }

  if (args.get_flag("batch-bench")) {
    bench::BatchBenchOptions bopt;
    bopt.clients = static_cast<std::size_t>(args.get_int("batch-clients", 32));
    bopt.requests = bopt.clients * 10;
    bopt.query_seed = opt.query_seed;
    report.batch = bench::measure_batch(bopt);
    std::printf("batch bench: %zu clients x %zu-row requests, batch-max %zu -> "
                "%.0f qps unbatched, %.0f qps batched (%.2fx), p95 %.0f -> %.0f ns\n",
                report.batch->clients, report.batch->rows, report.batch->batch_max,
                report.batch->qps_unbatched, report.batch->qps_batched, report.batch->speedup,
                report.batch->p95_unbatched_ns, report.batch->p95_batched_ns);
  }

  Table t({"variant", "backend", "batch", "p50 ns/q", "p95 ns/q", "p99 ns/q", "qps"});
  for (const bench::CaseResult& c : report.cases) {
    t.row()
        .cell(c.variant)
        .cell(c.backend)
        .cell(static_cast<std::uint64_t>(c.batch))
        .cell(c.p50_ns_per_query, 2)
        .cell(c.p95_ns_per_query, 2)
        .cell(c.p99_ns_per_query, 2)
        .cell(c.throughput_qps, 0);
  }
  print_table(std::cout, "Bench sweep (" + std::to_string(report.repeat_runs) + " repeats, " +
                             std::to_string(report.warmup_runs) + " warmup)",
              t);

  const std::string out = args.get("out", "BENCH_hrf.json");
  bench::save_report(report, out);
  std::printf("bench report written to %s (%zu cases, schema v%d)\n", out.c_str(),
              report.cases.size(), report.schema_version);

  const std::string baseline_path = args.get("compare", "");
  if (baseline_path.empty()) return 0;

  const double tolerance = args.get_double("tolerance", 0.25);
  const double trace_tolerance = args.get_double("trace-tolerance", 0.05);
  const bench::BenchReport baseline = bench::load_report(baseline_path);
  const bench::CompareResult cmp =
      bench::compare_reports(baseline, report, tolerance, trace_tolerance);
  if (!cmp.trace_overhead_ok) {
    std::printf("TRACE OVERHEAD: full sampling costs %.1f%% serve p95 (> %.0f%% allowed)\n",
                (cmp.trace_overhead_ratio - 1.0) * 100.0, trace_tolerance * 100.0);
  }
  if (!cmp.audit_overhead_ok) {
    std::printf("AUDIT OVERHEAD: sampled audits cost %.1f%% serve p95 (> %.0f%% allowed)\n",
                (cmp.audit_overhead_ratio - 1.0) * 100.0, trace_tolerance * 100.0);
  }
  if (!cmp.obs_overhead_ok) {
    std::printf("OBS OVERHEAD: monitor + SLO engine cost %.1f%% serve p95 (> %.0f%% "
                "allowed)\n",
                (cmp.obs_overhead_ratio - 1.0) * 100.0, trace_tolerance * 100.0);
  }
  for (const bench::Regression& r : cmp.regressions) {
    std::printf("REGRESSION %s: p95 %.0f -> %.0f ns/query (%.2fx > %.2fx allowed)\n",
                r.key.c_str(), r.baseline_p95, r.current_p95, r.ratio, 1.0 + tolerance);
  }
  for (const std::string& key : cmp.missing_cases) {
    std::printf("MISSING %s: present in baseline, absent from this run\n", key.c_str());
  }
  if (!cmp.passed()) {
    std::printf("bench compare vs %s: FAILED (%zu regression(s), %zu missing)\n",
                baseline_path.c_str(), cmp.regressions.size(), cmp.missing_cases.size());
    return 1;
  }
  std::printf("bench compare vs %s: ok (%d cases within %.0f%% p95 tolerance)\n",
              baseline_path.c_str(), cmp.compared, tolerance * 100.0);
  return 0;
}

// Publishes a model (+ layout) into the versioned store as a new
// generation. With --layout-blob the artifacts are copied byte-for-byte
// (validation is deferred to reload time — that is the store's contract);
// otherwise the layout is compiled here from the model.
int mode_publish(const CliArgs& args) {
  serve::ModelStore store = serve::ModelStore::open(args.get("store", "model-store"));
  const std::string model = args.get("model", "model.hrff");
  const std::string blob = args.get("layout-blob", "");
  const std::string note = args.get("note", "");
  std::uint64_t id = 0;
  if (!blob.empty()) {
    id = store.publish_files(model, blob, note);
  } else {
    const Forest forest = Forest::load(model);
    const std::string kind = args.get("layout", "hier");
    if (kind == "csr") {
      id = store.publish(forest, CsrForest::build(forest), note);
    } else if (kind == "hier") {
      HierConfig cfg;
      cfg.subtree_depth = static_cast<int>(args.get_int("sd", 8));
      cfg.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));
      id = store.publish(forest, HierarchicalForest::build(forest, cfg), note);
    } else {
      throw ConfigError("unknown --layout '" + kind + "' (csr|hier)");
    }
  }
  const serve::Generation gen = store.info(id);
  std::printf("published generation %llu to %s (%s layout, %llu bytes)\n",
              static_cast<unsigned long long>(id), store.dir().c_str(), gen.layout_kind.c_str(),
              static_cast<unsigned long long>(gen.total_bytes()));
  return 0;
}

int mode_store(const CliArgs& args) {
  const serve::ModelStore store = serve::ModelStore::open(args.get("store", "model-store"));
  const serve::StoreReport& rep = store.report();
  Table t({"generation", "layout", "bytes", "note"});
  for (const serve::Generation& g : rep.generations) {
    t.row()
        .cell(static_cast<std::uint64_t>(g.id))
        .cell(g.layout_kind)
        .cell(static_cast<std::uint64_t>(g.total_bytes()))
        .cell(g.note.empty() ? "-" : g.note);
  }
  print_table(std::cout, "Model store " + store.dir(), t);
  if (rep.current) {
    std::printf("current generation: %llu\n", static_cast<unsigned long long>(*rep.current));
  } else {
    std::printf("current generation: (none)\n");
  }
  if (rep.manifest_recovered) std::printf("manifest recovered from generation scan\n");
  for (const serve::QuarantinedGeneration& q : rep.quarantined) {
    std::printf("quarantined: %s (%s)\n", q.dir.c_str(), q.reason.c_str());
  }
  return 0;
}

// --- Observability monitor wiring shared by serve and cluster -------------
//
// The SLO burn-rate engine + incident flight recorder arm whenever any
// objective flag or an incident dir is given (docs/observability.md,
// "Time series, SLOs, and incident bundles"). SIGUSR1 requests an
// on-demand incident bundle from a live process; the handler only flips
// a flag and a poller thread hands it to the Monitor.

volatile std::sig_atomic_t g_incident_signal = 0;
extern "C" void on_incident_signal(int) { g_incident_signal = 1; }

bool monitor_armed(const CliArgs& args) {
  return args.has("slo-target-success") || args.has("slo-target-p95-ms") ||
         !args.get("incident-dir", "").empty();
}

obs::MonitorOptions make_monitor_options(const CliArgs& args) {
  obs::MonitorOptions mopt;
  mopt.interval_seconds = args.get_double("obs-interval-ms", 250.0) / 1e3;
  mopt.slo_enabled = true;
  mopt.slo.success_target = args.get_double("slo-target-success", 0.99);
  mopt.slo.p95_target_seconds = args.get_double("slo-target-p95-ms", 0.0) / 1e3;
  mopt.slo.fast_window_seconds = args.get_double("slo-window-fast-ms", 60'000.0) / 1e3;
  mopt.slo.slow_window_seconds = args.get_double("slo-window-slow-ms", 1'800'000.0) / 1e3;
  mopt.slo.fast_burn_threshold = args.get_double("slo-burn-fast", 14.0);
  mopt.slo.slow_burn_threshold = args.get_double("slo-burn-slow", 6.0);
  mopt.slo.cooldown_seconds = args.get_double("slo-cooldown-ms", 60'000.0) / 1e3;
  mopt.incident_dir = args.get("incident-dir", "");
  return mopt;
}

// Drain-time digest: one line per (objective, scope) pair, plus the
// grep-able "slo alert fired:" / "incident bundle written:" lines the
// chaos harness asserts on.
void print_monitor_summary(const obs::Monitor& monitor, const obs::FlightRecorder& flight) {
  for (const obs::SloAlertState& a : monitor.alerts()) {
    std::printf("slo: objective=%s scope=%s firing=%s fast_burn=%.2f slow_burn=%.2f "
                "fired=%llu cleared=%llu\n",
                a.objective.c_str(), a.scope.empty() ? "server" : a.scope.c_str(),
                a.firing ? "yes" : "no", a.fast_burn, a.slow_burn,
                static_cast<unsigned long long>(a.fired_total),
                static_cast<unsigned long long>(a.cleared_total));
    if (a.fired_total > 0) {
      std::printf("slo alert fired: objective=%s scope=%s fired=%llu\n", a.objective.c_str(),
                  a.scope.empty() ? "server" : a.scope.c_str(),
                  static_cast<unsigned long long>(a.fired_total));
    }
  }
  std::printf("obs: windows=%llu events=%llu (dropped %llu) bundles=%llu\n",
              static_cast<unsigned long long>(monitor.windows_recorded()),
              static_cast<unsigned long long>(flight.recorded()),
              static_cast<unsigned long long>(flight.dropped()),
              static_cast<unsigned long long>(monitor.bundles_written()));
  if (monitor.bundles_written() > 0) {
    std::printf("incident bundle written: %s\n", monitor.last_bundle_path().c_str());
  }
}

// Poller that turns a SIGUSR1 into a bundle trigger. Joined on drain.
std::thread start_incident_poller(obs::Monitor& monitor, std::atomic<bool>& stop) {
  std::signal(SIGUSR1, on_incident_signal);
  return std::thread([&monitor, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      if (g_incident_signal) {
        g_incident_signal = 0;
        monitor.trigger_incident("signal:SIGUSR1");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
}

int mode_serve(const CliArgs& args) {
  const Dataset data = Dataset::load(args.get("data", "data.hrfd"));

  ClassifierOptions opt;
  opt.backend = parse_backend(args.get("backend", "cpu"));
  opt.variant = parse_variant(args.get("variant", "independent"));
  opt.layout.subtree_depth = static_cast<int>(args.get_int("sd", 8));
  opt.layout.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));
  // With the per-replica FallbackPolicy on (default), ResourceErrors are
  // absorbed inside classify() and the breaker never sees them;
  // --no-fallback hands failure handling to the server's retry + breaker.
  opt.fallback.enabled = !args.get_flag("no-fallback");

  serve::ServerOptions sopt;
  sopt.num_workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sopt.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 32));
  sopt.default_deadline_seconds = args.get_double("deadline-ms", 0.0) / 1e3;
  sopt.retry.max_retries = static_cast<int>(args.get_int("retries", 2));
  sopt.retry.backoff_base_seconds = 1e-4;  // keep the synthetic demo fast
  sopt.breaker.failure_threshold = static_cast<int>(args.get_int("breaker-threshold", 5));
  sopt.breaker.open_seconds = args.get_double("breaker-open-ms", 100.0) / 1e3;
  sopt.drain_deadline_seconds = args.get_double("drain-s", 5.0);
  sopt.trace_sampling = args.get_double("trace-sample", 0.0);
  // Dynamic micro-batching (docs/serving.md): --batch-max > 1 lets each
  // worker coalesce queued requests into one backend-native batch,
  // waiting at most --batch-wait-us for batchmates.
  sopt.batching.max_requests = static_cast<std::size_t>(args.get_int("batch-max", 1));
  sopt.batching.max_wait_seconds = args.get_double("batch-wait-us", 500.0) / 1e6;
  // Integrity monitor (docs/robustness.md): background replica scrubbing,
  // sampled shadow audits against the CPU oracle, and the worker watchdog.
  sopt.integrity.scrub_interval_seconds = args.get_double("scrub-interval-ms", 0.0) / 1e3;
  sopt.integrity.audit_sample_every =
      static_cast<std::size_t>(args.get_int("audit-sample", 0));
  sopt.integrity.hang_timeout_seconds = args.get_double("hang-timeout-ms", 0.0) / 1e3;
  const std::vector<std::string> tenants = parse_tenant_quotas(args, sopt);
  // Flight recorder: always on in serve mode (the ring is cheap and the
  // incident bundle wants breaker/reload/integrity events when armed).
  obs::FlightRecorder flight(512);
  sopt.flight_recorder = &flight;

  // Model source: a direct model file, or a versioned store (the
  // lifecycle path — docs/model-lifecycle.md).
  const std::string store_dir = args.get("model-store", "");
  const std::string publish_live = args.get("publish-live", "");
  const std::string publish_bad = args.get("publish-bad", "");
  const bool lifecycle = !publish_live.empty() || !publish_bad.empty();
  if (lifecycle && store_dir.empty()) {
    throw ConfigError("--publish-live/--publish-bad require --model-store");
  }

  const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const std::size_t per_client = static_cast<std::size_t>(args.get_int("requests", 8));
  const std::size_t batch =
      std::min<std::size_t>(static_cast<std::size_t>(args.get_int("batch", 256)),
                            data.num_samples());
  Dataset queries(batch, data.num_features(), data.num_classes());
  queries.set_name(data.name());
  for (std::size_t i = 0; i < batch; ++i) queries.push_back(data.sample(i), data.label(i));

  std::optional<serve::ModelStore> store;
  std::optional<serve::ForestServer> server;
  std::vector<std::uint8_t> reference;
  if (!store_dir.empty()) {
    store.emplace(serve::ModelStore::open(store_dir));
    const auto cur = store->current();
    if (!cur) {
      throw ConfigError("model store " + store_dir +
                        " has no complete generation; run --mode publish first");
    }
    // The lifecycle demo republishes the *same* model, so predictions stay
    // bit-identical across the hot swap and one reference validates all.
    const serve::LoadedModel m = store->load(*cur);
    reference = m.forest.classify_batch(queries.features(), queries.num_samples());
    // Repairs of a corrupted replica re-load the generation from disk
    // when the store still serves it (blob CRCs re-verified on read).
    sopt.integrity.rebuild_store_dir = store_dir;
    server.emplace(*store, opt, sopt);
    std::printf("serving generation %llu from store %s\n",
                static_cast<unsigned long long>(server->generation()), store_dir.c_str());
  } else {
    Forest forest = Forest::load(args.get("model", "model.hrff"));
    reference = forest.classify_batch(queries.features(), queries.num_samples());
    server.emplace(std::move(forest), opt, sopt);
  }
  std::printf("serving %s/%s: %zu workers, queue %zu, %zu clients x %s requests of %zu queries\n",
              to_string(opt.backend), to_string(opt.variant), sopt.num_workers,
              sopt.queue_capacity, clients,
              lifecycle ? "open-ended" : std::to_string(per_client).c_str(), batch);

  // SLO burn-rate engine + incident bundles (docs/observability.md).
  std::optional<obs::Monitor> monitor;
  std::atomic<bool> incident_stop{false};
  std::thread incident_poll;
  if (monitor_armed(args)) {
    monitor.emplace(make_monitor_options(args), [&] { return server->metrics_snapshot(); },
                    &flight, &server->tracer());
    incident_poll = start_incident_poller(*monitor, incident_stop);
    std::printf("slo engine armed: success>=%.4f p95<=%.1fms windows %.0fms/%.0fms "
                "burn %g/%g\n",
                monitor->options().slo.success_target,
                monitor->options().slo.p95_target_seconds * 1e3,
                monitor->options().slo.fast_window_seconds * 1e3,
                monitor->options().slo.slow_window_seconds * 1e3,
                monitor->options().slo.fast_burn_threshold,
                monitor->options().slo.slow_burn_threshold);
  }

  // Store watcher: polls current() and hot-reloads each newly published
  // generation exactly once (a rejected generation is not retried).
  serve::ReloadOptions ropts;
  ropts.shadow_queries = static_cast<std::size_t>(args.get_int("shadow-queries", 64));
  ropts.canary_success_requests =
      static_cast<std::uint64_t>(args.get_int("canary-requests", 2));
  ropts.post_promotion_watch_requests =
      static_cast<std::uint64_t>(args.get_int("watch-requests", 0));
  const double watch_ms = args.get_double("watch-ms", lifecycle ? 20.0 : 0.0);
  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (store && watch_ms > 0) {
    watcher = std::thread([&] {
      std::uint64_t last_attempted = server->generation();
      while (!watch_stop.load(std::memory_order_acquire)) {
        const auto cur = store->current();
        if (cur && *cur != server->generation() && *cur != last_attempted) {
          last_attempted = *cur;
          const serve::ReloadReport rep = server->reload_latest(*store, ropts);
          std::printf("%s\n", rep.to_string().c_str());
        }
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(watch_ms));
      }
    });
  }

  // Periodic telemetry export (docs/observability.md): the writer thread
  // snapshots the server into <metrics-out> (Prometheus text) and
  // <metrics-out>.json atomically; a final dump always lands on drain.
  const std::string metrics_out = args.get("metrics-out", "");
  const double metrics_interval_ms = args.get_double("metrics-interval-ms", 0.0);
  std::atomic<bool> metrics_stop{false};
  std::thread metrics_writer;
  if (!metrics_out.empty() && metrics_interval_ms > 0) {
    metrics_writer = std::thread([&] {
      while (!metrics_stop.load(std::memory_order_acquire)) {
        obs::write_metrics_files(
            monitor ? monitor->snapshot() : server->metrics_snapshot(), metrics_out);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(metrics_interval_ms));
      }
    });
  }

  std::atomic<std::uint64_t> ok{0}, degraded{0}, overload{0}, quota_shed{0}, deadline{0},
      wrong{0}, failed{0};
  std::atomic<bool> client_stop{false};
  std::mutex sample_mu;
  std::vector<std::string> sample_degradations;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    // With quotas on, clients round-robin the configured tenants so every
    // admission bucket sees traffic; without, everything is anonymous.
    const std::string tenant = tenants.empty() ? "" : tenants[c % tenants.size()];
    pool.emplace_back([&, tenant] {
      // Fixed request count normally; in lifecycle mode clients hammer the
      // server until the orchestration below says stop.
      for (std::size_t r = 0; lifecycle ? !client_stop.load(std::memory_order_acquire)
                                        : r < per_client;
           ++r) {
        try {
          serve::ServeResult res =
              server->submit(queries, sopt.default_deadline_seconds, tenant).get();
          ++ok;
          if (res.report.predictions != reference) ++wrong;
          if (res.report.degraded()) {
            ++degraded;
            std::lock_guard<std::mutex> lock(sample_mu);
            if (sample_degradations.empty()) sample_degradations = res.report.degradations;
          }
        } catch (const QuotaError&) {
          ++quota_shed;  // distinct from overload: the tenant was over its share
        } catch (const OverloadError&) {
          ++overload;
        } catch (const DeadlineError&) {
          ++deadline;
        } catch (const Error&) {
          ++failed;
        }
      }
    });
  }

  // Lifecycle orchestration: warm traffic, hot-swap a good generation,
  // then prove a bad one is rejected while the old model keeps serving.
  bool lifecycle_ok = true;
  if (lifecycle) {
    const auto wait_until = [&](const std::function<bool()>& pred, double timeout_s) {
      WallTimer t;
      while (!pred()) {
        if (t.seconds() > timeout_s) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return true;
    };
    wait_until([&] { return ok.load() >= clients * 2; }, 20.0);

    if (!publish_live.empty()) {
      const Forest f = Forest::load(publish_live);
      std::uint64_t id = 0;
      if (opt.variant == Variant::Csr || opt.variant == Variant::FilBaseline) {
        id = store->publish(f, CsrForest::build(f), "cli live publish");
      } else {
        id = store->publish(f, HierarchicalForest::build(f, opt.layout), "cli live publish");
      }
      const bool flipped = wait_until([&] { return server->generation() == id; }, 20.0);
      std::printf("lifecycle: hot-swap to gen %llu %s (now serving gen %llu)\n",
                  static_cast<unsigned long long>(id), flipped ? "complete" : "TIMED OUT",
                  static_cast<unsigned long long>(server->generation()));
      lifecycle_ok &= flipped;
      const std::uint64_t mark = ok.load();  // traffic proven on the new model
      lifecycle_ok &= wait_until([&] { return ok.load() >= mark + clients; }, 20.0);
    }

    if (!publish_bad.empty()) {
      const std::size_t colon = publish_bad.rfind(':');
      if (colon == std::string::npos) {
        throw ConfigError("--publish-bad wants MODEL:LAYOUT_BLOB paths");
      }
      const std::uint64_t before = server->generation();
      const std::uint64_t id = store->publish_files(
          publish_bad.substr(0, colon), publish_bad.substr(colon + 1), "cli bad publish");
      const bool rejected = wait_until(
          [&] {
            for (const serve::ReloadReport& r : server->reload_history()) {
              if (r.to_generation == id && !r.promoted()) return true;
            }
            return false;
          },
          20.0);
      const bool still_old = server->generation() == before;
      std::printf("lifecycle: bad generation %llu %s; still serving gen %llu\n",
                  static_cast<unsigned long long>(id),
                  rejected && still_old ? "rejected" : "NOT REJECTED",
                  static_cast<unsigned long long>(server->generation()));
      lifecycle_ok &= rejected && still_old;
    }
    client_stop.store(true, std::memory_order_release);
  }

  for (std::thread& t : pool) t.join();
  watch_stop.store(true, std::memory_order_release);
  if (watcher.joinable()) watcher.join();
  // --trigger-incident: deterministic bundle for the CI schema gate — no
  // signal racing, the bundle is on disk before the summary prints.
  if (monitor && args.get_flag("trigger-incident")) {
    monitor->trigger_incident("cli:trigger-incident");
    WallTimer bundle_wait;
    while (monitor->bundles_written() == 0 && bundle_wait.seconds() < 5.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  metrics_stop.store(true, std::memory_order_release);
  if (metrics_writer.joinable()) metrics_writer.join();
  incident_stop.store(true, std::memory_order_release);
  if (incident_poll.joinable()) incident_poll.join();
  if (monitor) monitor->stop();

  const serve::DrainReport drain = server->shutdown();
  const serve::ServerStats stats = server->stats();
  if (!metrics_out.empty()) {
    obs::write_metrics_files(monitor ? monitor->snapshot() : server->metrics_snapshot(),
                             metrics_out);
    std::printf("metrics written to %s and %s.json\n", metrics_out.c_str(),
                metrics_out.c_str());
  }

  std::printf("clients done: %llu ok (%llu degraded), %llu overload-rejected, "
              "%llu quota-shed, %llu deadline, %llu failed\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(degraded.load()),
              static_cast<unsigned long long>(overload.load()),
              static_cast<unsigned long long>(quota_shed.load()),
              static_cast<unsigned long long>(deadline.load()),
              static_cast<unsigned long long>(failed.load()));
  if (!tenants.empty()) {
    Table tt({"tenant", "weight", "reserved", "admitted", "shed"});
    for (const serve::TenantCounters& tc : server->tenant_stats()) {
      tt.row()
          .cell(tc.name.empty() ? "(anonymous)" : tc.name)
          .cell(tc.weight, 1)
          .cell(static_cast<std::uint64_t>(tc.reserved))
          .cell(tc.admitted)
          .cell(tc.shed);
    }
    print_table(std::cout, "Tenant quotas", tt);
  }
  std::printf("prediction mismatches: %llu\n",
              static_cast<unsigned long long>(wrong.load()));
  for (const std::string& step : sample_degradations) {
    std::printf("sample degradation: %s\n", step.c_str());
  }
  std::printf("%s", server->counters().to_markdown().c_str());
  std::printf("latency percentiles (per stage):\n%s",
              server->latency().to_markdown().c_str());
  std::printf("backend rollups (variant x backend x generation):\n%s",
              server->rollups().to_markdown().c_str());
  if (sopt.trace_sampling > 0.0) {
    const auto summary = server->tracer().summary();
    std::printf("traces: started=%llu sampled=%llu retained=%zu (sampling %.3g)\n",
                static_cast<unsigned long long>(summary.started),
                static_cast<unsigned long long>(summary.sampled), summary.retained,
                summary.sampling);
    const auto top = static_cast<std::size_t>(args.get_int("trace-top", 0));
    for (const auto& tr : server->tracer().slowest(top)) {
      std::printf("%s", tr->to_string().c_str());
    }
  }
  if (monitor) print_monitor_summary(*monitor, flight);
  std::printf("breaker: state=%s trips=%llu probes=%llu\n", to_string(stats.breaker),
              static_cast<unsigned long long>(stats.breaker_trips),
              static_cast<unsigned long long>(stats.breaker_probes));
  if (sopt.integrity.scrub_interval_seconds > 0.0 || sopt.integrity.audit_sample_every > 0 ||
      sopt.integrity.hang_timeout_seconds > 0.0) {
    const serve::SelfHealStats heal = server->self_heal();
    Table ht({"integrity", "count"});
    ht.row().cell("scrub passes").cell(heal.scrub_passes);
    ht.row().cell("scrub corruptions").cell(heal.scrub_corruptions);
    ht.row().cell("replica repairs").cell(heal.scrub_repairs);
    ht.row().cell("audits sampled").cell(heal.audit_sampled);
    ht.row().cell("audit mismatches").cell(heal.audit_mismatches);
    ht.row().cell("missed heartbeats").cell(heal.watchdog_missed_heartbeats);
    ht.row().cell("worker restarts").cell(heal.watchdog_worker_restarts);
    print_table(std::cout, "Self-heal summary", ht);
  }
  if (store) {
    std::printf("reloads: promoted=%llu rejected=%llu rolled_back=%llu (serving gen %llu)\n",
                static_cast<unsigned long long>(stats.reloads_promoted),
                static_cast<unsigned long long>(stats.reloads_rejected),
                static_cast<unsigned long long>(stats.reloads_rolled_back),
                static_cast<unsigned long long>(stats.model_generation));
  }
  std::printf("drain: drained=%zu abandoned=%zu deadline_hit=%s in %.3fs\n", drain.drained,
              drain.abandoned, drain.deadline_hit ? "yes" : "no", drain.drain_seconds);

  const bool clean = server->healthy() && wrong.load() == 0 && failed.load() == 0 &&
                     drain.abandoned == 0 && lifecycle_ok;
  std::printf(clean ? "serve: clean shutdown\n" : "serve: FAILED (see counters above)\n");
  return clean ? 0 : 1;
}

// Sharded cluster demo + chaos driver (docs/cluster.md): stands up a
// ClusterRouter over --shards ForestServer shards, drives it with
// concurrent clients, and optionally injects chaos mid-traffic — kill a
// shard (--kill-shard), partition one and heal it (--partition-shard /
// --heal-ms), or run a staged rolling reload (--rolling-reload with
// --model-store + --publish-live) with the kill landing mid-wave. Exits
// nonzero when the aggregate success rate or router p95 violates the
// --slo-success / --slo-p95-ms degraded-mode SLOs, or any answered
// request returned wrong predictions.
int mode_cluster(const CliArgs& args) {
  const Dataset data = Dataset::load(args.get("data", "data.hrfd"));

  ClassifierOptions opt;
  opt.backend = parse_backend(args.get("backend", "cpu"));
  opt.variant = parse_variant(args.get("variant", "independent"));
  opt.layout.subtree_depth = static_cast<int>(args.get_int("sd", 8));
  opt.layout.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));
  opt.fallback.enabled = !args.get_flag("no-fallback");

  serve::ServerOptions sopt;
  sopt.num_workers = static_cast<std::size_t>(args.get_int("workers", 1));
  sopt.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 32));
  sopt.default_deadline_seconds = args.get_double("deadline-ms", 0.0) / 1e3;
  sopt.retry.backoff_base_seconds = 1e-4;
  sopt.drain_deadline_seconds = args.get_double("drain-s", 5.0);
  // Per-shard micro-batching: every shard's workers coalesce their own
  // queue; the router is oblivious (it already spreads load across shards).
  sopt.batching.max_requests = static_cast<std::size_t>(args.get_int("batch-max", 1));
  sopt.batching.max_wait_seconds = args.get_double("batch-wait-us", 500.0) / 1e6;
  // Per-shard integrity monitor (docs/robustness.md): each shard scrubs,
  // audits, and watchdogs its own replicas; the router just reports the
  // per-shard self-heal outcomes.
  sopt.integrity.scrub_interval_seconds = args.get_double("scrub-interval-ms", 0.0) / 1e3;
  sopt.integrity.audit_sample_every =
      static_cast<std::size_t>(args.get_int("audit-sample", 0));
  sopt.integrity.hang_timeout_seconds = args.get_double("hang-timeout-ms", 0.0) / 1e3;

  // Multi-tenant QoS (docs/cluster.md): --tenants carves every shard's
  // queue into weighted reserved shares; --surge marks one tenant as the
  // noisy neighbor (its clients send --surge-factor x the traffic and its
  // requests hog a worker for --surge-ms via the surge:tenant site).
  const std::vector<std::string> tenants = parse_tenant_quotas(args, sopt);
  const std::string surge_tenant = args.get("surge", "");
  const std::size_t surge_factor = static_cast<std::size_t>(args.get_int("surge-factor", 10));
  if (!surge_tenant.empty()) {
    if (std::find(tenants.begin(), tenants.end(), surge_tenant) == tenants.end()) {
      throw ConfigError("--surge tenant '" + surge_tenant + "' is not in --tenants");
    }
    sopt.surge_tenant = surge_tenant;
    sopt.inject_surge_seconds = args.get_double("surge-ms", 0.5) / 1e3;
    FaultInjector::global().arm("surge:tenant", -1);
  }

  cluster::ClusterOptions clopt;
  clopt.num_shards = static_cast<std::size_t>(args.get_int("shards", 4));
  clopt.policy = cluster::routing_policy_from_name(args.get("router-policy", "hash"));
  clopt.max_failovers = static_cast<int>(args.get_int("failovers", 2));
  clopt.hedge.min_seconds = args.get_double("hedge-ms", 10.0) / 1e3;
  clopt.probe_interval_seconds = args.get_double("probe-interval-ms", 20.0) / 1e3;
  // Adaptive admission: --adaptive-limit N starts the router's AIMD
  // concurrency limiter at N in-flight requests.
  const long long limit0 = args.get_int("adaptive-limit", 0);
  if (limit0 > 0) {
    clopt.limit.enabled = true;
    clopt.limit.initial_limit = static_cast<std::size_t>(limit0);
    clopt.limit.target_p95_seconds = args.get_double("limit-p95-ms", 50.0) / 1e3;
  }
  // Histogram-driven autoscaling: --autoscale lets the fleet grow to
  // --autoscale-max shards on route-p95 / queue-depth pressure and shrink
  // back to --autoscale-min when idle.
  const bool autoscale = args.get_flag("autoscale");
  cluster::AutoscalerOptions aopt;
  if (autoscale) {
    aopt.min_shards = static_cast<std::size_t>(args.get_int("autoscale-min", 1));
    aopt.max_shards = static_cast<std::size_t>(
        args.get_int("autoscale-max", static_cast<long long>(clopt.num_shards * 2)));
    aopt.evaluation_interval_seconds = args.get_double("autoscale-interval-ms", 20.0) / 1e3;
    aopt.scale_up_p95_seconds = args.get_double("autoscale-up-p95-ms", 5.0) / 1e3;
    // Default the shrink threshold well under the grow threshold so a
    // bare --autoscale-up-p95-ms never trips the down < up validation.
    aopt.scale_down_p95_seconds =
        args.get_double("autoscale-down-p95-ms", aopt.scale_up_p95_seconds * 1e3 / 5.0) / 1e3;
    clopt.max_shards = aopt.max_shards;
  }

  // Flight recorder: shared by the router, every shard, and the
  // autoscaler; sized up because a fleet emits more transitions.
  obs::FlightRecorder flight(1024);
  clopt.flight_recorder = &flight;

  const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const std::size_t per_client = static_cast<std::size_t>(args.get_int("requests", 32));
  const std::size_t batch =
      std::min<std::size_t>(static_cast<std::size_t>(args.get_int("batch", 256)),
                            data.num_samples());
  Dataset queries(batch, data.num_features(), data.num_classes());
  queries.set_name(data.name());
  for (std::size_t i = 0; i < batch; ++i) queries.push_back(data.sample(i), data.label(i));

  const std::string store_dir = args.get("model-store", "");
  const bool rolling = args.get_flag("rolling-reload");
  if (rolling && store_dir.empty()) {
    throw ConfigError("--rolling-reload requires --model-store");
  }

  std::optional<serve::ModelStore> store;
  std::optional<cluster::ClusterRouter> router;
  std::vector<std::uint8_t> reference;
  if (!store_dir.empty()) {
    store.emplace(serve::ModelStore::open(store_dir));
    const auto cur = store->current();
    if (!cur) {
      throw ConfigError("model store " + store_dir +
                        " has no complete generation; run --mode publish first");
    }
    const serve::LoadedModel m = store->load(*cur);
    reference = m.forest.classify_batch(queries.features(), queries.num_samples());
    sopt.integrity.rebuild_store_dir = store_dir;
    router.emplace(*store, opt, sopt, clopt);
  } else {
    Forest forest = Forest::load(args.get("model", "model.hrff"));
    reference = forest.classify_batch(queries.features(), queries.num_samples());
    router.emplace(forest, opt, sopt, clopt);
  }
  std::printf("cluster: %zu shards (%s routing, %d failovers, hedge floor %.1f ms), "
              "%zu clients x %zu requests of %zu queries\n",
              router->num_shards(), cluster::to_string(clopt.policy), clopt.max_failovers,
              clopt.hedge.min_seconds * 1e3, clients, per_client, batch);
  if (autoscale) {
    std::printf("autoscaler: %zu..%zu shards, eval every %.0f ms, up p95 %.1f ms, "
                "down p95 %.1f ms\n",
                aopt.min_shards, aopt.max_shards, aopt.evaluation_interval_seconds * 1e3,
                aopt.scale_up_p95_seconds * 1e3, aopt.scale_down_p95_seconds * 1e3);
  }
  std::optional<cluster::ClusterAutoscaler> scaler;
  if (autoscale) scaler.emplace(*router, aopt);

  // SLO burn-rate engine + incident bundles over the whole fleet: the
  // per-shard scopes come from the snapshot's shard health rows, so a
  // killed shard raises hrf_slo_* even while failover keeps the
  // client-visible success rate high (docs/observability.md).
  std::optional<obs::Monitor> monitor;
  std::atomic<bool> incident_stop{false};
  std::thread incident_poll;
  if (monitor_armed(args)) {
    monitor.emplace(make_monitor_options(args), [&] { return router->metrics_snapshot(); },
                    &flight);
    incident_poll = start_incident_poller(*monitor, incident_stop);
    std::printf("slo engine armed: success>=%.4f p95<=%.1fms windows %.0fms/%.0fms "
                "burn %g/%g\n",
                monitor->options().slo.success_target,
                monitor->options().slo.p95_target_seconds * 1e3,
                monitor->options().slo.fast_window_seconds * 1e3,
                monitor->options().slo.slow_window_seconds * 1e3,
                monitor->options().slo.fast_burn_threshold,
                monitor->options().slo.slow_burn_threshold);
  }

  // One outcome ledger per tenant (a single anonymous one without
  // --tenants); the surge tenant's quota sheds are expected, every other
  // tenant is a victim whose success rate the SLO gate protects.
  struct TenantOutcome {
    std::string name;
    std::atomic<std::uint64_t> ok{0}, quota_shed{0}, deadline{0}, failed{0}, wrong{0};

    std::uint64_t total() const {
      return ok.load() + quota_shed.load() + deadline.load() + failed.load();
    }
    double success_rate() const {
      const std::uint64_t t = total();
      return t > 0 ? static_cast<double>(ok.load()) / static_cast<double>(t) : 1.0;
    }
  };
  std::vector<std::unique_ptr<TenantOutcome>> outcomes;
  if (tenants.empty()) {
    outcomes.push_back(std::make_unique<TenantOutcome>());
  } else {
    for (const std::string& name : tenants) {
      outcomes.push_back(std::make_unique<TenantOutcome>());
      outcomes.back()->name = name;
    }
  }

  std::atomic<std::uint64_t> ok{0}, failed{0}, wrong{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < outcomes.size(); ++t) {
    TenantOutcome& outcome = *outcomes[t];
    const bool surging = !outcome.name.empty() && outcome.name == surge_tenant;
    const std::size_t requests = per_client * (surging ? surge_factor : 1);
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, t, c, requests] {
        for (std::size_t r = 0; r < requests; ++r) {
          cluster::QueryOptions qopt;
          qopt.key = (t * 977 + c) * 1000003ULL + r;
          qopt.tenant = outcome.name;
          try {
            const cluster::ClusterResult res = router->query(queries, qopt);
            ++outcome.ok;
            ++ok;
            if (res.result.report.predictions != reference) {
              ++outcome.wrong;
              ++wrong;
            }
          } catch (const QuotaError&) {
            ++outcome.quota_shed;  // admission said no; not a shard failure
          } catch (const DeadlineError&) {
            ++outcome.deadline;
            ++failed;
          } catch (const Error&) {
            ++outcome.failed;
            ++failed;
          }
        }
      });
    }
  }

  // Chaos orchestration: wait out the healthy warmup, then inject.
  const double chaos_delay_s = args.get_double("chaos-delay-ms", 10.0) / 1e3;
  const long long kill = args.get_int("kill-shard", -1);
  const long long partition = args.get_int("partition-shard", -1);
  const double heal_s = args.get_double("heal-ms", 100.0) / 1e3;
  const auto nap = [](double s) {
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
  };

  std::thread chaos;
  if (kill >= 0 && rolling) {
    // The acceptance scenario: the kill lands mid-wave, the wave halts
    // and rolls the already-promoted shards back.
    chaos = std::thread([&] {
      nap(chaos_delay_s);
      router->kill_shard(static_cast<std::size_t>(kill));
      std::printf("chaos: killed shard %lld mid-reload\n", kill);
    });
  } else if (kill >= 0) {
    nap(chaos_delay_s);
    router->kill_shard(static_cast<std::size_t>(kill));
    std::printf("chaos: killed shard %lld\n", kill);
  }
  if (partition >= 0) {
    nap(chaos_delay_s);
    router->set_partitioned(static_cast<std::size_t>(partition), true);
    std::printf("chaos: partitioned shard %lld for %.0f ms\n", partition, heal_s * 1e3);
  }

  bool reload_as_expected = true;
  if (rolling) {
    const std::string publish_live = args.get("publish-live", "");
    std::uint64_t target_gen = store->current().value();
    if (!publish_live.empty()) {
      const Forest f = Forest::load(publish_live);
      if (opt.variant == Variant::Csr || opt.variant == Variant::FilBaseline) {
        target_gen = store->publish(f, CsrForest::build(f), "cluster rolling reload");
      } else {
        target_gen =
            store->publish(f, HierarchicalForest::build(f, opt.layout), "cluster rolling reload");
      }
    }
    cluster::RollingReloadOptions ropts;
    ropts.reload.shadow_queries = static_cast<std::size_t>(args.get_int("shadow-queries", 64));
    ropts.reload.canary_success_requests =
        static_cast<std::uint64_t>(args.get_int("canary-requests", 1));
    ropts.reload.post_promotion_watch_requests =
        static_cast<std::uint64_t>(args.get_int("watch-requests", 0));
    const cluster::RollingReloadReport rep = router->rolling_reload(*store, target_gen, ropts);
    std::printf("%s\n", rep.to_string().c_str());
    // A kill scheduled mid-wave must halt the wave; otherwise it must
    // complete.
    reload_as_expected = (kill >= 0) ? !rep.completed : rep.completed;
  }
  if (chaos.joinable()) chaos.join();

  if (partition >= 0) {
    nap(heal_s);
    router->set_partitioned(static_cast<std::size_t>(partition), false);
    std::printf("chaos: healed shard %lld\n", partition);
  }

  for (std::thread& t : pool) t.join();
  if (!surge_tenant.empty()) FaultInjector::global().disarm("surge:tenant");
  // A killed shard keeps burning its error budget after traffic ends (a
  // down shard is a 100% error ratio per window), so wait for the
  // multi-window alert to mature instead of racing the drain — this is
  // what the chaos kill_shard scenario asserts on.
  if (monitor && kill >= 0) {
    WallTimer alert_wait;
    while (monitor->alerts_fired_total() == 0 && alert_wait.seconds() < 5.0) {
      nap(0.02);
    }
  }
  if (monitor && args.get_flag("trigger-incident")) {
    monitor->trigger_incident("cli:trigger-incident");
    WallTimer bundle_wait;
    while (monitor->bundles_written() == 0 && bundle_wait.seconds() < 5.0) nap(0.01);
  }
  if (scaler) {
    scaler->stop();
    const cluster::AutoscalerStats as = scaler->stats();
    std::printf("autoscaler: %llu evaluations, %llu scale-ups, %llu scale-downs, "
                "%llu stalled; fleet ends at %zu shards\n",
                static_cast<unsigned long long>(as.evaluations),
                static_cast<unsigned long long>(as.scale_ups),
                static_cast<unsigned long long>(as.scale_downs),
                static_cast<unsigned long long>(as.stalled), as.active_shards);
  }

  const cluster::ClusterStats stats = router->stats();
  const HistogramSnapshot route = router->route_latency();
  const double p95_ms = route.percentile_ns(95) / 1e6;
  const std::uint64_t total = ok.load() + failed.load();
  const double success = total > 0 ? static_cast<double>(ok.load()) / static_cast<double>(total)
                                   : 0.0;

  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    obs::write_metrics_files(monitor ? monitor->snapshot() : router->metrics_snapshot(),
                             metrics_out);
    std::printf("metrics written to %s and %s.json\n", metrics_out.c_str(),
                metrics_out.c_str());
  }
  incident_stop.store(true, std::memory_order_release);
  if (incident_poll.joinable()) incident_poll.join();
  if (monitor) monitor->stop();
  router->shutdown();

  std::printf("latency percentiles (per stage):\n%s", router->latency().to_markdown().c_str());
  std::uint64_t total_repairs = 0, total_restarts = 0;
  for (const cluster::ShardStatus& s : stats.shard_status) {
    total_repairs += s.repairs;
    total_restarts += s.worker_restarts;
    std::printf("shard %zu: %s%s breaker=%s gen=%llu routed=%llu failures=%llu "
                "repairs=%llu restarts=%llu\n",
                s.index, s.alive ? "up" : "down", s.partitioned ? " (partitioned)" : "",
                serve::to_string(s.breaker), static_cast<unsigned long long>(s.generation),
                static_cast<unsigned long long>(s.routed),
                static_cast<unsigned long long>(s.failures),
                static_cast<unsigned long long>(s.repairs),
                static_cast<unsigned long long>(s.worker_restarts));
  }
  if (monitor) print_monitor_summary(*monitor, flight);
  if (!tenants.empty()) {
    Table tt({"tenant", "ok", "quota-shed", "deadline", "failed", "success"});
    for (const auto& o : outcomes) {
      tt.row()
          .cell(o->name + (o->name == surge_tenant ? " (surge)" : ""))
          .cell(o->ok.load())
          .cell(o->quota_shed.load())
          .cell(o->deadline.load())
          .cell(o->failed.load())
          .cell(o->success_rate(), 4);
    }
    print_table(std::cout, "Per-tenant outcomes", tt);
  }
  std::printf("cluster summary: shards=%zu available=%zu ok=%llu failed=%llu wrong=%llu "
              "success=%.4f p95_ms=%.3f failovers=%llu hedged=%llu hedge_wins=%llu "
              "no_shard=%llu probes=%llu rollbacks=%llu quota_shed=%llu limited=%llu "
              "scale_ups=%llu scale_downs=%llu\n",
              stats.shards, stats.available, static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(wrong.load()), success, p95_ms,
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.hedged),
              static_cast<unsigned long long>(stats.hedge_wins),
              static_cast<unsigned long long>(stats.no_shard_available),
              static_cast<unsigned long long>(stats.probes),
              static_cast<unsigned long long>(stats.shard_rollbacks),
              static_cast<unsigned long long>(stats.quota_shed),
              static_cast<unsigned long long>(stats.limited),
              static_cast<unsigned long long>(stats.scale_ups),
              static_cast<unsigned long long>(stats.scale_downs));
  if (total_repairs > 0 || total_restarts > 0) {
    std::printf("cluster self-heal: replica_repairs=%llu worker_restarts=%llu\n",
                static_cast<unsigned long long>(total_repairs),
                static_cast<unsigned long long>(total_restarts));
  }

  const double slo_success = args.get_double("slo-success", 0.99);
  const double slo_p95_ms = args.get_double("slo-p95-ms", 0.0);
  bool clean = wrong.load() == 0 && reload_as_expected;
  // With a designated surge tenant, the SLO protects the victims: each
  // non-surge tenant must hold the success floor on its own (its quota
  // sheds count against it), while the surger is expected to be shed.
  for (const auto& o : outcomes) {
    if (o->name == surge_tenant) continue;
    if (o->success_rate() < slo_success) {
      std::printf("SLO VIOLATION: tenant %s success %.4f < %.4f\n",
                  o->name.empty() ? "(anonymous)" : o->name.c_str(), o->success_rate(),
                  slo_success);
      clean = false;
    }
  }
  if (surge_tenant.empty() && success < slo_success) {
    std::printf("SLO VIOLATION: success %.4f < %.4f\n", success, slo_success);
    clean = false;
  }
  if (slo_p95_ms > 0.0 && p95_ms > slo_p95_ms) {
    std::printf("SLO VIOLATION: p95 %.3f ms > %.3f ms\n", p95_ms, slo_p95_ms);
    clean = false;
  }
  if (!reload_as_expected) std::printf("rolling reload did not end in the expected state\n");
  std::printf(clean ? "cluster: clean shutdown\n" : "cluster: FAILED (see summary above)\n");
  return clean ? 0 : 1;
}

// Trace explorer (docs/observability.md): drives a short, fully-sampled
// serving session and pretty-prints the slowest end-to-end traces as span
// trees — queue wait, execute, per-chunk backend work, retries, fallback —
// with the simulated device counters attached as span attributes.
int mode_trace(const CliArgs& args) {
  const Dataset data = Dataset::load(args.get("data", "data.hrfd"));

  ClassifierOptions opt;
  opt.backend = parse_backend(args.get("backend", "cpu"));
  opt.variant = parse_variant(args.get("variant", "independent"));
  opt.layout.subtree_depth = static_cast<int>(args.get_int("sd", 8));
  opt.layout.root_subtree_depth = static_cast<int>(args.get_int("rsd", 0));
  opt.fallback.enabled = !args.get_flag("no-fallback");

  serve::ServerOptions sopt;
  sopt.num_workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sopt.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 32));
  // A generous default deadline routes execution through the chunked
  // cancellable path, so each trace shows per-chunk spans with backend
  // counter attributes (no deadline = single-shot classify, no chunks).
  sopt.default_deadline_seconds = args.get_double("deadline-ms", 30'000.0) / 1e3;
  sopt.deadline_chunk_size = static_cast<std::size_t>(args.get_int("chunk", 64));
  sopt.trace_sampling = 1.0;  // trace mode records everything
  sopt.trace_capacity = static_cast<std::size_t>(args.get_int("requests", 16)) + 1;

  const std::size_t requests = static_cast<std::size_t>(args.get_int("requests", 16));
  const std::size_t batch =
      std::min<std::size_t>(static_cast<std::size_t>(args.get_int("batch", 256)),
                            data.num_samples());
  Dataset queries(batch, data.num_features(), data.num_classes());
  queries.set_name(data.name());
  for (std::size_t i = 0; i < batch; ++i) queries.push_back(data.sample(i), data.label(i));

  serve::ForestServer server(Forest::load(args.get("model", "model.hrff")), opt, sopt);
  std::printf("tracing %zu requests of %zu queries on %s/%s (sampling 1.0)\n", requests, batch,
              to_string(opt.backend), to_string(opt.variant));
  std::size_t completed = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    try {
      server.submit(queries).get();
      ++completed;
    } catch (const Error& e) {
      std::printf("request %zu failed: %s\n", r, e.what());
    }
  }
  server.shutdown();

  const auto top = static_cast<std::size_t>(args.get_int("trace-top", 5));
  const auto slowest = server.tracer().slowest(top);
  std::printf("%zu/%zu requests completed; slowest %zu of %zu retained traces:\n", completed,
              requests, slowest.size(), server.tracer().summary().retained);
  for (const auto& tr : slowest) std::printf("%s", tr->to_string().c_str());

  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    obs::write_metrics_files(server.metrics_snapshot(), metrics_out);
    std::printf("metrics written to %s and %s.json\n", metrics_out.c_str(), metrics_out.c_str());
  }
  return completed == requests ? 0 : 1;
}

// Schema gate for the exported telemetry (tools/check.sh): parses a
// Prometheus text file + its JSON sibling and fails unless every metric
// in the documented catalogue is present with the declared type.
int mode_metrics_check(const CliArgs& args) {
  const std::string prom_path = args.get("metrics", "metrics.prom");
  const std::string json_path = args.get("json", prom_path + ".json");
  try {
    obs::check_metrics_schema(read_file_text(prom_path), read_file_text(json_path));
  } catch (const Error& e) {
    std::printf("metrics-check: FAILED: %s\n", e.what());
    return 1;
  }
  std::printf("metrics-check: %s + %s ok (%zu catalogued families)\n", prom_path.c_str(),
              json_path.c_str(), obs::metric_catalogue().size());
  return 0;
}

// Incident-bundle inspector + schema gate (tools/ci.sh): parses a bundle
// written by the Monitor, validates it against the "hrf-incident" v1
// schema, and prints a digest — reason, firing alerts, window/event/trace
// counts, and the tail of the event ring.
int mode_incident(const CliArgs& args) {
  const std::string path = args.get("bundle", "incident.json");
  json::Value bundle;
  try {
    bundle = json::Value::parse(read_file_text(path));
    obs::check_incident_bundle(bundle);
  } catch (const Error& e) {
    std::printf("incident-check: FAILED: %s\n", e.what());
    return 1;
  }
  std::printf("incident bundle %s: reason=\"%s\"\n", path.c_str(),
              bundle.get("reason").as_string().c_str());
  const json::Value& alerts = bundle.get("alerts");
  std::size_t firing = 0;
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const json::Value& a = alerts.at(i);
    if (a.get("firing").as_bool()) {
      ++firing;
      std::printf("  firing: %s %s fast_burn=%.2f slow_burn=%.2f\n",
                  a.get("objective").as_string().c_str(), a.get("scope").as_string().c_str(),
                  a.get("fast_burn").as_number(), a.get("slow_burn").as_number());
    }
  }
  const json::Value& events = bundle.get("events");
  const std::size_t tail = std::min<std::size_t>(events.size(), 8);
  for (std::size_t i = events.size() - tail; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    std::printf("  event: [%s] %s %s %s\n", e.get("category").as_string().c_str(),
                e.get("name").as_string().c_str(), e.get("scope").as_string().c_str(),
                e.get("detail").as_string().c_str());
  }
  std::printf("incident-check: %s ok (%zu alerts, %zu firing, %zu windows, %zu events, "
              "%zu traces)\n",
              path.c_str(), alerts.size(), firing, bundle.get("windows").size(),
              events.size(), bundle.get("traces").size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.allow("mode",
             "gen | train | info | layout | predict | compile | publish | store | serve | "
             "cluster | bench | trace | metrics-check | incident")
      .allow("dataset", "gen: covertype | susy | higgs")
      .allow("samples", "gen: sample count")
      .allow("data", "train/predict: dataset file (.hrfd)")
      .allow("split", "train: use the train half, report holdout accuracy")
      .allow("trees", "train: number of trees")
      .allow("depth", "train: max tree depth")
      .allow("features-per-split", "train: 0 = sqrt default")
      .allow("seed", "train: RNG seed")
      .allow("model", "info/layout/predict/compile: model file (.hrff)")
      .allow("backend", "predict: cpu | gpu-sim | fpga-sim")
      .allow("variant", "predict: csr | independent | collaborative | hybrid | fil")
      .allow("sd", "layout/predict/compile: max subtree depth(s)")
      .allow("rsd", "layout/predict/compile: root subtree depth(s), 0 = SD")
      .allow("layout", "compile/publish: csr | hier")
      .allow("layout-blob", "predict/publish: precompiled layout blob (.hrfl)")
      .allow("store", "publish/store: model store directory")
      .allow("note", "publish: free-text note recorded in the generation manifest")
      .allow("model-store", "serve: serve the store's current generation (hot-reloadable)")
      .allow("watch-ms", "serve: store poll interval for hot reload (0 = no watcher)")
      .allow("canary-requests", "serve: canary successes required before full promotion")
      .allow("watch-requests", "serve: post-promotion requests to watch for an error spike")
      .allow("shadow-queries", "serve: synthetic probe size for shadow validation")
      .allow("publish-live", "serve: model file to publish mid-traffic (hot-swap demo)")
      .allow("publish-bad", "serve: MODEL:BLOB to publish as a must-be-rejected generation")
      .allow("no-fallback", "predict/serve: disable the in-classifier fallback chain "
                            "(serve: failures then drive the server's retry + breaker)")
      .allow("workers", "serve: worker threads (classifier replicas)")
      .allow("queue-cap", "serve: bounded request queue capacity")
      .allow("clients", "serve: synthetic client threads")
      .allow("requests", "serve: requests per client")
      .allow("batch", "serve: queries per request")
      .allow("deadline-ms", "serve: per-request deadline (0 = none)")
      .allow("batch-max", "serve/cluster: max requests coalesced per dispatch "
                          "(<= 1 = micro-batching off)")
      .allow("batch-wait-us", "serve/cluster: max batch-forming wait per member "
                              "(default 500)")
      .allow("retries", "serve: max server-level retries per request")
      .allow("breaker-threshold", "serve: consecutive failures to trip the breaker")
      .allow("breaker-open-ms", "serve: breaker cooldown before half-open")
      .allow("drain-s", "serve: graceful shutdown drain deadline")
      .allow("scrub-interval-ms", "serve/cluster: replica CRC scrub cadence (0 = off)")
      .allow("audit-sample", "serve/cluster: shadow-audit every Nth request on the CPU "
                             "oracle (0 = off)")
      .allow("hang-timeout-ms", "serve/cluster: worker watchdog hang threshold (0 = off)")
      .allow("trace-sample", "serve: fraction of requests to trace (0..1, default 0)")
      .allow("trace-top", "serve/trace: slowest trace trees to print after drain")
      .allow("chunk", "trace: queries per cancellable execution chunk")
      .allow("metrics-out", "serve/trace: telemetry file (Prometheus text; <file>.json sibling)")
      .allow("metrics-interval-ms", "serve: periodic metrics export interval (0 = final only)")
      .allow("metrics", "metrics-check: Prometheus text file to validate")
      .allow("json", "metrics-check: JSON metrics file (default <metrics>.json)")
      .allow("obs-interval-ms", "serve/cluster: monitor sampling cadence (default 250)")
      .allow("slo-target-success", "serve/cluster: arm the SLO burn-rate engine with this "
                                   "success objective (e.g. 0.99)")
      .allow("slo-target-p95-ms", "serve/cluster: end-to-end p95 objective in ms "
                                  "(0 = latency objective off)")
      .allow("slo-window-fast-ms", "serve/cluster: fast burn window (default 60000)")
      .allow("slo-window-slow-ms", "serve/cluster: slow burn window (default 1800000)")
      .allow("slo-burn-fast", "serve/cluster: fast-window burn threshold (default 14)")
      .allow("slo-burn-slow", "serve/cluster: slow-window burn threshold (default 6)")
      .allow("slo-cooldown-ms", "serve/cluster: post-clear alert cooldown (default 60000)")
      .allow("incident-dir", "serve/cluster: directory for incident bundles "
                             "(empty = bundles off; also arms the monitor)")
      .allow("trigger-incident", "serve/cluster: dump one bundle on drain (CI schema gate)")
      .allow("bundle", "incident: bundle JSON file to validate and summarize")
      .allow("shards", "cluster/bench: number of ForestServer shards")
      .allow("router-policy", "cluster: hash | least-loaded")
      .allow("hedge-ms", "cluster: hedge delay floor (p95-derived above it)")
      .allow("failovers", "cluster: extra shards tried after a failed attempt")
      .allow("probe-interval-ms", "cluster: health probe loop cadence")
      .allow("kill-shard", "cluster: shard to kill after --chaos-delay-ms (-1 = none)")
      .allow("partition-shard", "cluster: shard to partition from the router (-1 = none)")
      .allow("heal-ms", "cluster: partition duration before healing")
      .allow("chaos-delay-ms", "cluster: healthy warmup before chaos lands")
      .allow("rolling-reload", "cluster: staged rolling reload across the fleet "
                               "(publishes --publish-live to --model-store first)")
      .allow("slo-success", "cluster: minimum aggregate success rate (default 0.99)")
      .allow("slo-p95-ms", "cluster: maximum router p95 in ms (0 = ungated)")
      .allow("tenants", "serve/cluster: comma-separated tenant names with reserved "
                        "queue shares (empty = quotas off)")
      .allow("tenant-weights", "serve/cluster: comma-separated weights, one per tenant "
                               "(default: equal)")
      .allow("surge", "cluster: tenant that surges --surge-factor x the normal rate "
                      "(arms surge:tenant; victims' SLOs are gated per tenant)")
      .allow("surge-factor", "cluster: surge traffic multiplier (default 10)")
      .allow("surge-ms", "cluster: worker stall per surging request (default 0.5)")
      .allow("adaptive-limit", "cluster: initial AIMD in-flight limit (0 = limiter off)")
      .allow("limit-p95-ms", "cluster: AIMD target route p95 (default 50)")
      .allow("autoscale", "cluster: scale the fleet on route-p95/queue-depth pressure")
      .allow("autoscale-min", "cluster: autoscaler floor (default 1)")
      .allow("autoscale-max", "cluster: autoscaler ceiling (default 2x --shards)")
      .allow("autoscale-interval-ms", "cluster: autoscaler evaluation cadence (default 20)")
      .allow("autoscale-up-p95-ms", "cluster: route p95 that grows the fleet (default 5)")
      .allow("autoscale-down-p95-ms", "cluster: route p95 floor that shrinks it (default 1)")
      .allow("inject-fault", "fault spec(s): resource:{gpu|gpu-smem|fpga|fpga-bram}[:n], "
                             "bitflip:layout, corrupt:{node|replica}, "
                             "crash:{publish|manifest|route}, freeze:{shard|batcher}, "
                             "hang:worker, surge:tenant, stall:autoscaler")
      .allow("inject-seed", "fault injector RNG seed")
      .allow("variants", "bench: comma-separated variant sweep list")
      .allow("backends", "bench: comma-separated backend sweep list")
      .allow("batches", "bench: comma-separated batch sizes")
      .allow("warmup", "bench: untimed runs per case")
      .allow("repeats", "bench: timed runs per case (percentile sample)")
      .allow("features", "bench: synthetic forest feature count")
      .allow("compare", "bench: baseline BENCH_hrf.json to gate against")
      .allow("tolerance", "bench: allowed fractional p95 growth (default 0.25)")
      .allow("trace-overhead", "bench: measure serve p95 at trace sampling 0.0 vs 1.0")
      .allow("trace-requests", "bench: requests per trace-overhead run (default 200)")
      .allow("audit-bench", "bench: measure serve p95 with shadow audits off vs sampled")
      .allow("audit-requests", "bench: requests per audit-overhead run (default 200)")
      .allow("audit-sample-every", "bench: audit sampling rate for --audit-bench "
                                   "(default 32)")
      .allow("obs-bench", "bench: measure serve p95 with the monitor + SLO engine "
                          "off vs armed")
      .allow("obs-requests", "bench: requests per obs-overhead run (default 200)")
      .allow("trace-tolerance", "bench: allowed fractional trace-overhead p95 cost "
                                "(default 0.05)")
      .allow("cluster-bench", "bench: measure routed p95 + qps over a healthy shard fleet")
      .allow("noisy-bench", "bench: measure victim p95 under a quota-shed tenant surge")
      .allow("batch-bench", "bench: measure serve qps + p95 batched vs unbatched")
      .allow("batch-clients", "bench: concurrent clients for --batch-bench (default 32)")
      .allow("out", "gen/train/predict/compile/bench: output path");
  if (!args.validate()) return 1;

  try {
    const std::string faults = args.get("inject-fault", "");
    if (!faults.empty()) {
      hrf::FaultInjector& inj = hrf::FaultInjector::global();
      inj.seed(static_cast<std::uint64_t>(args.get_int("inject-seed", 42)));
      inj.arm_specs(faults);
    }
    const std::string mode = args.get("mode", "");
    if (mode == "gen") return mode_gen(args);
    if (mode == "train") return mode_train(args);
    if (mode == "info") return mode_info(args);
    if (mode == "layout") return mode_layout(args);
    if (mode == "predict") return mode_predict(args);
    if (mode == "compile") return mode_compile(args);
    if (mode == "publish") return mode_publish(args);
    if (mode == "store") return mode_store(args);
    if (mode == "serve") return mode_serve(args);
    if (mode == "cluster") return mode_cluster(args);
    if (mode == "bench") return mode_bench(args);
    if (mode == "trace") return mode_trace(args);
    if (mode == "metrics-check") return mode_metrics_check(args);
    if (mode == "incident") return mode_incident(args);
    std::fprintf(stderr, "missing or unknown --mode (try --help)\n");
    return 1;
  } catch (const hrf::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
