#!/usr/bin/env bash
# Single-entry CI pipeline: builds the plain tree, then runs the tier-1
# correctness gate, the metrics-schema gate, the incident-bundle schema
# gate, the chaos matrix (ctest -L chaos plus the tools/chaos.sh CLI
# harness), and the ThreadSanitizer concurrency suites — and emits a
# machine-readable JSON report with one pass/fail entry per step, so a
# CI job can publish structured results instead of scraping logs.
#
# Every step runs even when an earlier one fails (the report then shows
# exactly which gates broke); the script exits nonzero if any step failed.
# Usage: tools/ci.sh [--out report.json]
set -uo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

OUT="ci_report.json"
if [ "${1:-}" = "--out" ]; then
  OUT="${2:?usage: tools/ci.sh [--out report.json]}"
elif [ -n "${1:-}" ]; then
  echo "usage: tools/ci.sh [--out report.json]" >&2
  exit 2
fi

NAMES=()
CODES=()
SECS=()

run_step() {  # run_step <name> <function>
  local name="$1" fn="$2" rc=0 t0="$SECONDS"
  echo "=== ci: $name ==="
  "$fn" || rc=$?
  NAMES+=("$name")
  CODES+=("$rc")
  SECS+=("$((SECONDS - t0))")
  if [ "$rc" -eq 0 ]; then
    echo "ci: $name passed"
  else
    echo "ci: $name FAILED (exit $rc)" >&2
  fi
}

step_build() {
  cmake -B build -S . -DHRF_BUILD_BENCHES=OFF &&
  cmake --build build -j "$JOBS"
}

step_tier1() {
  ctest --test-dir build --output-on-failure -j "$JOBS" -L tier1
}

# Mirrors check.sh's metrics-schema gate: a traced serve run must export
# Prometheus + JSON files that --mode metrics-check accepts against the
# documented catalogue (docs/observability.md).
step_metrics_schema() {
  local cli=build/tools/hrf_cli dir rc=0
  dir="$(mktemp -d)"
  {
    "$cli" --mode gen --dataset susy --samples 1500 --out "$dir/d.hrfd" > /dev/null &&
    "$cli" --mode train --data "$dir/d.hrfd" --trees 6 --depth 7 \
           --out "$dir/m.hrff" > /dev/null &&
    "$cli" --mode serve --data "$dir/d.hrfd" --model "$dir/m.hrff" \
           --backend gpu-sim --variant hybrid --sd 4 \
           --trace-sample 1.0 --metrics-out "$dir/metrics.prom" \
           --workers 2 --clients 2 --requests 3 --batch 64 > "$dir/serve.log" 2>&1 &&
    "$cli" --mode metrics-check --metrics "$dir/metrics.prom"
  } || rc=$?
  rm -rf "$dir"
  return "$rc"
}

# Incident-bundle schema gate (docs/observability.md, "Time series,
# SLOs, and incident bundles"): a serve run with the monitor armed and a
# deterministic --trigger-incident must drop a bundle that --mode
# incident accepts against the "hrf-incident" v1 schema.
step_incident_schema() {
  local cli=build/tools/hrf_cli dir rc=0
  dir="$(mktemp -d)"
  {
    "$cli" --mode gen --dataset susy --samples 1500 --out "$dir/d.hrfd" > /dev/null &&
    "$cli" --mode train --data "$dir/d.hrfd" --trees 6 --depth 7 \
           --out "$dir/m.hrff" > /dev/null &&
    "$cli" --mode serve --data "$dir/d.hrfd" --model "$dir/m.hrff" \
           --workers 2 --clients 2 --requests 5 --batch 64 \
           --slo-target-success 0.99 --obs-interval-ms 20 \
           --incident-dir "$dir/incidents" --trigger-incident \
           > "$dir/serve.log" 2>&1 &&
    grep -q "incident bundle written:" "$dir/serve.log" &&
    "$cli" --mode incident --bundle "$dir/incidents/incident-000000.json"
  } || rc=$?
  if [ "$rc" -ne 0 ]; then cat "$dir/serve.log" >&2 || true; fi
  rm -rf "$dir"
  return "$rc"
}

# The chaos matrix: every chaos-labeled gtest gate (cluster degraded-mode
# SLOs, batching freeze storm, integrity corruption/hang storm) plus the
# scenario-driven CLI harness.
step_chaos() {
  ctest --test-dir build --output-on-failure -L chaos &&
  tools/chaos.sh build/tools/hrf_cli
}

step_tsan() {
  tools/check.sh --tsan-only
}

run_step build step_build
run_step tier1 step_tier1
run_step metrics-schema step_metrics_schema
run_step incident-schema step_incident_schema
run_step chaos step_chaos
run_step tsan step_tsan

OVERALL=0
{
  printf '{\n  "schema": "hrf-ci",\n  "steps": [\n'
  for i in "${!NAMES[@]}"; do
    comma=","
    [ "$i" -eq $((${#NAMES[@]} - 1)) ] && comma=""
    passed=true
    if [ "${CODES[$i]}" -ne 0 ]; then
      passed=false
      OVERALL=1
    fi
    printf '    {"name": "%s", "passed": %s, "exit_code": %s, "seconds": %s}%s\n' \
           "${NAMES[$i]}" "$passed" "${CODES[$i]}" "${SECS[$i]}" "$comma"
  done
  if [ "$OVERALL" -eq 0 ]; then
    printf '  ],\n  "passed": true\n}\n'
  else
    printf '  ],\n  "passed": false\n}\n'
  fi
} > "$OUT"

echo "ci: report written to $OUT"
if [ "$OVERALL" -ne 0 ]; then
  echo "ci.sh: step failures above" >&2
  exit 1
fi
echo "ci.sh: all steps passed"
