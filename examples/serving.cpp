// Serving a forest behind the ForestServer (docs/serving.md): a worker
// pool of classifier replicas fed by a bounded queue, with admission
// control, per-request deadlines, retry, a circuit breaker routing to a
// CPU-native fallback, and graceful drain. This example walks the happy
// path, then arms a persistent injected GPU fault to show every request
// still being answered — degraded, never wrong — before a clean shutdown.
//
//   ./build/examples/serving

#include <cstdio>
#include <future>
#include <vector>

#include "core/hrf.hpp"
#include "util/fault.hpp"

int main() {
  using namespace hrf;

  // A small model and a batch of queries to serve.
  SyntheticSpec data_spec;
  data_spec.name = "serving-demo";
  data_spec.num_samples = 4000;
  data_spec.num_features = 12;
  data_spec.num_relevant = 8;
  data_spec.seed = 7;
  const Dataset data = make_synthetic(data_spec);

  TrainConfig train_cfg;
  train_cfg.num_trees = 12;
  train_cfg.max_depth = 10;
  Forest forest = train_forest(data, train_cfg);

  Dataset queries(256, data.num_features(), data.num_classes());
  for (std::size_t i = 0; i < 256; ++i) queries.push_back(data.sample(i), data.label(i));

  // Primary backend: simulated GPU, hybrid layout. The in-classifier
  // fallback chain is off so failures reach the server's retry + breaker.
  ClassifierOptions copt;
  copt.backend = Backend::GpuSim;
  copt.variant = Variant::Hybrid;
  copt.layout.subtree_depth = 6;
  copt.fallback.enabled = false;

  serve::ServerOptions sopt;
  sopt.num_workers = 2;
  sopt.queue_capacity = 16;
  sopt.retry.max_retries = 1;
  sopt.retry.backoff_base_seconds = 1e-4;
  sopt.breaker.failure_threshold = 2;
  sopt.breaker.open_seconds = 60.0;  // stays open for the rest of the demo

  serve::ForestServer server(std::move(forest), copt, sopt);
  std::printf("server up: ready=%s workers=%zu queue=%zu\n",
              server.ready() ? "yes" : "no", sopt.num_workers, sopt.queue_capacity);

  // Happy path: a few requests served by the primary backend.
  std::vector<std::future<serve::ServeResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(queries));
  for (auto& f : futures) {
    const serve::ServeResult res = f.get();
    std::printf("  served %zu queries in %.3f ms (queued %.3f ms, fallback=%s)\n",
                res.report.predictions.size(), res.service_seconds * 1e3,
                res.queue_seconds * 1e3, res.via_fallback ? "yes" : "no");
  }

  // Now the GPU "fails" persistently: the breaker trips after two
  // consecutive failures and later requests skip straight to the
  // CPU-native replica, with the degradation recorded per response.
  std::printf("\narming persistent resource:gpu fault...\n");
  FaultInjector::global().arm("resource:gpu", -1);
  for (int i = 0; i < 4; ++i) {
    const serve::ServeResult res = server.submit(queries).get();
    std::printf("  served via fallback=%s, retries=%d%s%s\n",
                res.via_fallback ? "yes" : "no", res.retries,
                res.report.degraded() ? ": " : "",
                res.report.degraded() ? res.report.degradations.back().c_str() : "");
  }
  FaultInjector::global().disarm_all();

  const serve::ServerStats stats = server.stats();
  std::printf("\nbreaker: %s (trips=%llu, short-circuited=%llu)\n",
              serve::to_string(stats.breaker),
              static_cast<unsigned long long>(stats.breaker_trips),
              static_cast<unsigned long long>(stats.breaker_short_circuited));
  std::printf("%s", server.counters().to_markdown().c_str());

  const serve::DrainReport drain = server.shutdown();
  std::printf("shutdown: drained=%zu abandoned=%zu healthy=%s\n", drain.drained,
              drain.abandoned, server.healthy() ? "yes" : "no");
  return server.healthy() && drain.abandoned == 0 ? 0 : 1;
}
