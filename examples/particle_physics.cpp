// Particle-physics event selection on SUSY-like data (the paper's largest
// dataset, 3M collision events with 18 kinematic features). A trigger
// pipeline has to classify millions of events quickly; this example walks
// the accuracy-vs-depth trade-off of §4.1 and then times the best model
// on the simulated GPU and FPGA, mirroring the paper's Fig. 10 comparison.
//
//   ./build/examples/particle_physics [--events N]

#include <cstdio>
#include <iostream>

#include "core/hrf.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  args.allow("events", "number of collision events to synthesize (default 120000)");
  if (!args.validate()) return 1;
  const auto n = static_cast<std::size_t>(args.get_int("events", 120'000));

  Dataset events = make_susy_like(n);
  auto [train, test] = events.split();
  std::printf("SUSY-like events: %zu train / %zu test, %zu features\n", train.num_samples(),
              test.num_samples(), events.num_features());

  // --- Accuracy-guided depth selection (paper §4.1): find the smallest
  // depth within 0.3% of the best observed accuracy.
  const BinnedDataset binned(train, 64);
  Table acc_table({"max depth", "accuracy %", "nodes/tree"});
  double best_acc = 0.0;
  std::vector<std::pair<int, double>> curve;
  for (int depth : {5, 10, 15, 20, 25}) {
    TrainConfig tc;
    tc.num_trees = 50;
    tc.max_depth = depth;
    const Forest f = train_forest(binned, train.num_features(), tc);
    const double acc = f.accuracy(test.features(), test.labels());
    curve.emplace_back(depth, acc);
    best_acc = acc > best_acc ? acc : best_acc;
    acc_table.row()
        .cell(std::int64_t{depth})
        .cell(100 * acc, 2)
        .cell(static_cast<std::uint64_t>(f.stats().total_nodes / f.tree_count()));
  }
  print_table(std::cout, "Accuracy vs max tree depth (50 trees)", acc_table);

  int selected = curve.back().first;
  for (const auto& [depth, acc] : curve) {
    if (acc >= best_acc - 0.003) {
      selected = depth;
      break;
    }
  }
  std::printf("selected depth %d (within 0.3%% of best %.2f%%)\n\n", selected, 100 * best_acc);

  // --- Final model at the selected depth, timed on both platforms.
  TrainConfig tc;
  tc.num_trees = 100;
  tc.max_depth = selected;
  const Forest forest = train_forest(binned, train.num_features(), tc);

  Table timing({"platform", "variant", "seconds (simulated)", "notes"});
  {
    ClassifierOptions opt;
    opt.backend = Backend::GpuSim;
    opt.variant = Variant::Hybrid;
    opt.layout.subtree_depth = 8;
    opt.layout.root_subtree_depth = 12;
    const RunReport r = Classifier(Forest(forest), opt).classify(test);
    timing.row().cell("TITAN Xp (sim)").cell("hybrid").cell(r.seconds, 4).cell(
        "limiter: " + r.gpu_timing->limiter);
  }
  {
    ClassifierOptions opt;
    opt.backend = Backend::FpgaSim;
    opt.variant = Variant::Independent;
    opt.layout.subtree_depth = 8;
    opt.fpga_layout = fpgasim::CuLayout{4, 12, 300.0};
    const RunReport r = Classifier(Forest(forest), opt).classify(test);
    char buf[64];
    std::snprintf(buf, sizeof buf, "stall %.1f%%, II %s", r.fpga_report->stall_pct,
                  r.fpga_report->ii_desc.c_str());
    timing.row().cell("Alveo U250 (sim)").cell("independent 4S12C").cell(r.seconds, 4).cell(buf);
  }
  print_table(std::cout, "Trigger-rate comparison (Fig. 10 style)", timing);
  std::printf("The GPU wins on raw throughput (bandwidth + clock); the FPGA\n"
              "catches up only through compute-unit replication (paper §4.5).\n");
  return 0;
}
