// Quickstart: train a random forest, compile it into the hierarchical
// layout, and classify queries on the simulated GPU with the hybrid
// kernel — the paper's best-performing configuration.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/hrf.hpp"

int main() {
  using namespace hrf;

  // 1. Data. (Real users: fill a Dataset from your own feature rows via
  //    Dataset::push_back; here we generate a SUSY-like particle-physics
  //    dataset and slice it 1:1 into train/test, as the paper does.)
  Dataset data = make_susy_like(60'000);
  auto [train, test] = data.split();
  std::printf("dataset: %zu samples x %zu features (%.1f%% positive)\n",
              data.num_samples(), data.num_features(), 100 * data.positive_fraction());

  // 2. Train a forest (CART with bootstrap + feature subsampling).
  TrainConfig train_cfg;
  train_cfg.num_trees = 50;
  train_cfg.max_depth = 16;
  WallTimer timer;
  Classifier clf = Classifier::train(
      train, train_cfg,
      ClassifierOptions{
          .variant = Variant::Hybrid,
          .backend = Backend::GpuSim,
          .layout = {.subtree_depth = 8, .root_subtree_depth = 10},
      });
  const ForestStats fs = clf.forest().stats();
  std::printf("trained %zu trees in %.1fs: %zu nodes, max depth %d\n", fs.tree_count,
              timer.seconds(), fs.total_nodes, fs.max_depth);

  // 3. Classify the test half on the simulated TITAN Xp.
  const RunReport report = clf.classify(test);
  std::printf("hybrid kernel on gpu-sim: %.4f simulated seconds, accuracy %.2f%%\n",
              report.seconds, 100 * report.accuracy(test.labels()));
  std::printf("  global loads: %llu requests -> %llu transactions (%.1f per request)\n",
              static_cast<unsigned long long>(report.gpu_counters->gld_requests),
              static_cast<unsigned long long>(report.gpu_counters->gld_transactions),
              report.gpu_counters->transactions_per_request());
  std::printf("  branch efficiency: %.3f, limiter: %s\n",
              report.gpu_counters->branch_efficiency(), report.gpu_timing->limiter.c_str());

  // 4. Compare against the CSR baseline to see the paper's speedup.
  ClassifierOptions csr_opt;
  csr_opt.variant = Variant::Csr;
  csr_opt.backend = Backend::GpuSim;
  const Classifier baseline(Forest(clf.forest()), csr_opt);
  const RunReport csr_report = baseline.classify(test);
  std::printf("CSR baseline: %.4f simulated seconds -> hybrid speedup %.1fx\n",
              csr_report.seconds, csr_report.seconds / report.seconds);

  // 5. Persist the model for later runs.
  clf.forest().save("quickstart_model.hrff");
  std::printf("model saved to quickstart_model.hrff\n");
  return 0;
}
