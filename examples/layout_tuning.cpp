// Layout tuning: explore the hierarchical layout's space/time trade-off
// (paper §3.1 and §4.2/4.3) for a model you already have. Sweeps the max
// subtree depth SD and root subtree depth RSD, reporting memory overhead
// vs CSR, padding, subtree counts, and simulated-GPU time — the numbers a
// practitioner needs to pick a configuration.
//
//   ./build/examples/layout_tuning [--model path.hrff]

#include <cstdio>
#include <iostream>

#include "core/hrf.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hrf;
  CliArgs args(argc, argv);
  args.allow("model", "path to a serialized forest (default: train a demo model)");
  if (!args.validate()) return 1;

  // Load the user's model, or train a demo model on higgs-like data.
  Forest forest = [&] {
    const std::string path = args.get("model", "");
    if (!path.empty()) return Forest::load(path);
    std::printf("no --model given; training a demo forest on higgs-like data...\n");
    Dataset data = make_higgs_like(60'000);
    TrainConfig tc;
    tc.num_trees = 60;
    tc.max_depth = 20;
    return train_forest(data.split().first, tc);
  }();
  const ForestStats fs = forest.stats();
  std::printf("model: %zu trees, %zu nodes, max depth %d, mean leaf depth %.1f\n\n",
              fs.tree_count, fs.total_nodes, fs.max_depth, fs.mean_leaf_depth);

  const Dataset probe = make_random_queries(4'000, static_cast<int>(forest.num_features()));
  const CsrForest csr = CsrForest::build(forest);

  ClassifierOptions csr_opt;
  csr_opt.backend = Backend::GpuSim;
  csr_opt.variant = Variant::Csr;
  const double csr_seconds = Classifier(Forest(forest), csr_opt).classify(probe).seconds;
  std::printf("CSR reference: %zu bytes, %.5f simulated-GPU seconds on %zu probe queries\n",
              csr.memory_bytes(), csr_seconds, probe.num_samples());

  Table table({"SD", "RSD", "mem vs CSR", "padding", "subtrees", "gpu hybrid x"});
  for (int sd : {4, 6, 8}) {
    for (int rsd : {0, 10, 12}) {
      if (rsd != 0 && rsd <= sd) continue;
      HierConfig cfg;
      cfg.subtree_depth = sd;
      cfg.root_subtree_depth = rsd;
      const HierarchicalForest h = HierarchicalForest::build(forest, cfg);

      ClassifierOptions opt;
      opt.backend = Backend::GpuSim;
      opt.variant = Variant::Hybrid;
      opt.layout = cfg;
      const double seconds = Classifier(Forest(forest), opt).classify(probe).seconds;

      table.row()
          .cell(std::int64_t{sd})
          .cell(std::int64_t{cfg.effective_root_depth()})
          .cell(static_cast<double>(h.memory_bytes()) / csr.memory_bytes(), 2)
          .cell(h.stats().padding_ratio, 3)
          .cell(static_cast<std::uint64_t>(h.num_subtrees()))
          .cell(csr_seconds / seconds, 2);
    }
  }
  print_table(std::cout, "Hierarchical layout tuning grid", table);
  std::printf(
      "Reading the grid: larger SD cuts indirections (faster) but pads more\n"
      "(bigger); larger RSD moves more of each tree into shared memory. The\n"
      "shared-memory capacity caps RSD at 12 on the TITAN Xp (48 KB).\n");
  return 0;
}
