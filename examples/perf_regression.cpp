// Software-optimization use case (paper §1 motivates RFs for "software
// optimization"): predict a program configuration's runtime with a
// regression forest, then use a classification forest to gate a fast
// accept/reject decision on the same features — demonstrating both halves
// of the training substrate.
//
//   ./build/examples/perf_regression

#include <cstdio>
#include <iostream>

#include "core/hrf.hpp"
#include "util/rng.hpp"

namespace {

using namespace hrf;

/// Synthetic autotuning data: 8 configuration knobs -> runtime (seconds).
/// Runtime = base + interaction terms + noise; "acceptable" = under budget.
struct Workload {
  Dataset features;
  std::vector<float> runtimes;
  std::vector<std::uint8_t> acceptable;

  explicit Workload(std::size_t n, std::uint64_t seed) : features(n, 8) {
    Xoshiro256 rng(seed);
    std::vector<float> row(8);
    runtimes.reserve(n);
    acceptable.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : row) v = rng.uniform_float();
      const float runtime = 1.0f + 2.5f * row[0] * row[1]        // tile interplay
                            + 1.5f * (row[2] > 0.7f ? 1.f : 0.f)  // spill cliff
                            + 0.8f * row[3]                       // unroll cost
                            + static_cast<float>(rng.normal(0.0, 0.05));
      runtimes.push_back(runtime);
      acceptable.push_back(runtime < 2.4f ? 1 : 0);
      features.push_back(row, acceptable.back());
    }
  }
};

}  // namespace

int main() {
  const Workload train(30'000, 1);
  const Workload test(8'000, 2);
  std::printf("autotuning corpus: %zu train / %zu test configurations\n",
              train.features.num_samples(), test.features.num_samples());

  // --- Regression: predict the runtime itself.
  RegressionConfig rc;
  rc.num_trees = 60;
  rc.max_depth = 12;
  WallTimer timer;
  const RegressionForest reg = train_regression_forest(train.features, train.runtimes, rc);
  std::printf("regression forest trained in %.1fs: MSE %.4f, R^2 %.3f\n", timer.seconds(),
              reg.mse(test.features.features(), test.runtimes),
              reg.r2(test.features.features(), test.runtimes));

  const float sample_cfg[8] = {0.9f, 0.9f, 0.9f, 0.9f, 0.1f, 0.1f, 0.1f, 0.1f};
  std::printf("worst-knobs configuration predicted at %.2fs (true model ~%.2fs)\n",
              reg.predict(sample_cfg), 1.0 + 2.5 * 0.81 + 1.5 + 0.8 * 0.9);

  // --- Classification: accept/reject against the runtime budget, served
  // from the paper's hybrid kernel on the simulated GPU.
  TrainConfig cc;
  cc.num_trees = 60;
  cc.max_depth = 12;
  ClassifierOptions opt;
  opt.variant = Variant::Hybrid;
  opt.backend = Backend::GpuSim;
  opt.layout.subtree_depth = 6;
  opt.layout.root_subtree_depth = 10;
  const Classifier clf = Classifier::train(train.features, cc, opt);
  const RunReport r = clf.classify(test.features);
  std::printf("budget gate on gpu-sim/hybrid: %.5f simulated-s, accuracy %.2f%%\n", r.seconds,
              100 * r.accuracy(test.acceptable));

  Table t({"metric", "regression", "classification gate"});
  t.row().cell("trees").cell(std::int64_t{rc.num_trees}).cell(std::int64_t{cc.num_trees});
  t.row().cell("max depth").cell(std::int64_t{rc.max_depth}).cell(std::int64_t{cc.max_depth});
  t.row()
      .cell("quality")
      .cell("R^2 " + std::to_string(reg.r2(test.features.features(), test.runtimes)).substr(0, 5))
      .cell(std::to_string(100 * r.accuracy(test.acceptable)).substr(0, 5) + "% acc");
  print_table(std::cout, "Autotuning models", t);
  return 0;
}
