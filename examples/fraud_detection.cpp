// Banking-fraud screening — one of the latency-critical applications the
// paper's introduction motivates ("banking fraud detection ... require
// fast RF classification").
//
// A transaction stream must be screened in bounded time. This example
// builds a fraud-like synthetic workload (rare positive class, wide
// feature vector), trains a forest, and compares per-transaction latency
// across backends and variants, including the recall/precision the
// screening achieves.
//
//   ./build/examples/fraud_detection

#include <cstdio>
#include <iostream>

#include "core/hrf.hpp"

namespace {

using namespace hrf;

/// Fraud-like data: 30 behavioural features, deep interaction structure
/// (fraud patterns are conjunctions of many conditions), ~8% label noise.
Dataset make_transactions(std::size_t n) {
  SyntheticSpec spec;
  spec.name = "transactions";
  spec.num_samples = n;
  spec.num_features = 30;
  spec.num_relevant = 18;
  spec.teacher_depth = 18;
  spec.mass_floor = 8e-3;
  spec.peel_prob = 0.6;
  spec.label_noise = 0.08;
  spec.seed = 2026;
  return make_synthetic(spec);
}

struct Quality {
  double precision = 0.0;
  double recall = 0.0;
};

Quality score(const std::vector<std::uint8_t>& pred, std::span<const std::uint8_t> truth) {
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    tp += pred[i] == 1 && truth[i] == 1;
    fp += pred[i] == 1 && truth[i] == 0;
    fn += pred[i] == 0 && truth[i] == 1;
  }
  Quality q;
  q.precision = tp + fp ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  q.recall = tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  return q;
}

}  // namespace

int main() {
  Dataset data = make_transactions(80'000);
  auto [train, stream] = data.split();
  std::printf("transaction stream: %zu screened transactions, %.1f%% fraudulent\n",
              stream.num_samples(), 100 * stream.positive_fraction());

  TrainConfig tc;
  tc.num_trees = 80;
  tc.max_depth = 18;
  const Forest forest = train_forest(train, tc);
  std::printf("model: %zu trees, %zu nodes, max depth %d\n\n", forest.tree_count(),
              forest.stats().total_nodes, forest.stats().max_depth);

  Table table({"backend/variant", "time", "us/txn", "precision", "recall"});
  const auto run = [&](Backend b, Variant v, const char* label) {
    ClassifierOptions opt;
    opt.backend = b;
    opt.variant = v;
    opt.layout.subtree_depth = 8;
    opt.layout.root_subtree_depth = 10;
    const Classifier clf(Forest(forest), opt);
    const RunReport r = clf.classify(stream);
    const Quality q = score(r.predictions, stream.labels());
    table.row()
        .cell(label)
        .cell(std::to_string(r.seconds).substr(0, 8) + (r.simulated ? " sim-s" : " s"))
        .cell(1e6 * r.seconds / static_cast<double>(stream.num_samples()), 3)
        .cell(q.precision, 3)
        .cell(q.recall, 3);
  };

  run(Backend::CpuNative, Variant::Csr, "cpu / csr");
  run(Backend::CpuNative, Variant::Independent, "cpu / hierarchical");
  run(Backend::GpuSim, Variant::Csr, "gpu-sim / csr");
  run(Backend::GpuSim, Variant::Hybrid, "gpu-sim / hybrid");
  run(Backend::FpgaSim, Variant::Independent, "fpga-sim / independent");

  print_table(std::cout, "Fraud screening latency across backends", table);
  std::printf(
      "All rows classify the same stream with bit-identical predictions;\n"
      "only where/how the forest is traversed differs.\n");
  return 0;
}
